package trace

import (
	"strings"
	"testing"
	"time"

	"fesplit/internal/capture"
	"fesplit/internal/tcpsim"
)

// mkEvents builds a synthetic client-side session: handshake at RTT,
// GET at t1, ACK at t1+RTT, then response chunks at given times/offsets.
type chunkSpec struct {
	at    time.Duration
	seq   uint64 // TCP seq (stream offset + 1)
	data  []byte
	retra bool
}

func mkEvents(rtt time.Duration, chunks []chunkSpec) []capture.Event {
	evs := []capture.Event{
		{Time: 0, Dir: tcpsim.DirSend,
			Seg: tcpsim.Segment{Flags: tcpsim.FlagSYN, SrcPort: 40000, DstPort: 80}},
		{Time: rtt, Dir: tcpsim.DirRecv,
			Seg: tcpsim.Segment{Flags: tcpsim.FlagSYN | tcpsim.FlagACK, Ack: 1, SrcPort: 80, DstPort: 40000}},
		{Time: rtt, Dir: tcpsim.DirSend,
			Seg: tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1, Ack: 1, SrcPort: 40000, DstPort: 80}},
		{Time: rtt, Dir: tcpsim.DirSend,
			Seg: tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1, Ack: 1, Data: []byte("GET / HTTP/1.1\r\n\r\n"),
				SrcPort: 40000, DstPort: 80}},
		{Time: 2 * rtt, Dir: tcpsim.DirRecv,
			Seg: tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: 1, Ack: 19, SrcPort: 80, DstPort: 40000}},
	}
	for _, c := range chunks {
		evs = append(evs, capture.Event{Time: c.at, Dir: tcpsim.DirRecv,
			Seg: tcpsim.Segment{Flags: tcpsim.FlagACK, Seq: c.seq, Ack: 19,
				Data: c.data, Retrans: c.retra, SrcPort: 80, DstPort: 40000}})
	}
	return evs
}

func key() capture.ConnKey {
	return capture.ConnKey{Remote: "fe", LocalPort: 40000, RemotePort: 80}
}

func TestParseTimeline(t *testing.T) {
	rtt := 20 * time.Millisecond
	static := []byte("SSSSSSSSSS") // 10 bytes
	dynamic := []byte("DDDDDDDD")
	evs := mkEvents(rtt, []chunkSpec{
		{at: 25 * time.Millisecond, seq: 1, data: static},
		{at: 100 * time.Millisecond, seq: 11, data: dynamic},
	})
	s, err := Parse(key(), evs)
	if err != nil {
		t.Fatal(err)
	}
	if s.RTT != rtt {
		t.Fatalf("RTT = %v", s.RTT)
	}
	if s.TB != 0 || s.T1 != rtt || s.T2 != 2*rtt {
		t.Fatalf("tb/t1/t2 = %v/%v/%v", s.TB, s.T1, s.T2)
	}
	if s.T3 != 25*time.Millisecond || s.TE != 100*time.Millisecond {
		t.Fatalf("t3/te = %v/%v", s.T3, s.TE)
	}
	if string(s.Payload) != "SSSSSSSSSSDDDDDDDD" {
		t.Fatalf("payload = %q", s.Payload)
	}
	if err := s.Locate(10); err != nil {
		t.Fatal(err)
	}
	if s.T4 != 25*time.Millisecond || s.T5 != 100*time.Millisecond {
		t.Fatalf("t4/t5 = %v/%v", s.T4, s.T5)
	}
	if s.Tstatic() != s.T4-s.T2 || s.Tdynamic() != s.T5-s.T2 {
		t.Fatal("parameter identities broken")
	}
	if s.Tdelta() != 75*time.Millisecond {
		t.Fatalf("Tdelta = %v", s.Tdelta())
	}
	if s.Overall() != 100*time.Millisecond {
		t.Fatalf("Overall = %v", s.Overall())
	}
	if s.Boundary() != 10 {
		t.Fatalf("Boundary = %d", s.Boundary())
	}
}

func TestCoalescedBoundaryGivesZeroDelta(t *testing.T) {
	// Large RTT: last static byte and first dynamic byte in ONE packet.
	evs := mkEvents(200*time.Millisecond, []chunkSpec{
		{at: 410 * time.Millisecond, seq: 1, data: []byte("SSSSSSSSDD")},
		{at: 411 * time.Millisecond, seq: 11, data: []byte("DDDDDD")},
	})
	s, err := Parse(key(), evs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Locate(8); err != nil {
		t.Fatal(err)
	}
	if s.Tdelta() != 0 {
		t.Fatalf("coalesced Tdelta = %v, want 0", s.Tdelta())
	}
}

func TestRetransmissionFirstArrivalWins(t *testing.T) {
	// Offset 0..10 arrives at 25ms and again (retransmitted) at 300ms.
	evs := mkEvents(20*time.Millisecond, []chunkSpec{
		{at: 25 * time.Millisecond, seq: 1, data: []byte("0123456789")},
		{at: 300 * time.Millisecond, seq: 1, data: []byte("0123456789"), retra: true},
		{at: 310 * time.Millisecond, seq: 11, data: []byte("XY")},
	})
	s, err := Parse(key(), evs)
	if err != nil {
		t.Fatal(err)
	}
	at, err := s.ArrivalOf(5)
	if err != nil {
		t.Fatal(err)
	}
	if at != 25*time.Millisecond {
		t.Fatalf("first arrival = %v", at)
	}
	if s.Retransmissions != 1 {
		t.Fatalf("retrans = %d", s.Retransmissions)
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	evs := mkEvents(10*time.Millisecond, []chunkSpec{
		{at: 30 * time.Millisecond, seq: 6, data: []byte("WORLD")},
		{at: 35 * time.Millisecond, seq: 1, data: []byte("HELLO")},
	})
	s, err := Parse(key(), evs)
	if err != nil {
		t.Fatal(err)
	}
	if string(s.Payload) != "HELLOWORLD" {
		t.Fatalf("payload = %q", s.Payload)
	}
	at0, _ := s.ArrivalOf(0)
	at5, _ := s.ArrivalOf(5)
	if at0 != 35*time.Millisecond || at5 != 30*time.Millisecond {
		t.Fatalf("arrivals = %v / %v", at0, at5)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(key(), nil); err != ErrNoHandshake {
		t.Fatalf("empty session err = %v", err)
	}
	// Handshake only.
	evs := mkEvents(10*time.Millisecond, nil)[:3]
	if _, err := Parse(key(), evs); err != ErrNoRequest {
		t.Fatalf("no-request err = %v", err)
	}
	// Handshake + GET but no response payload.
	evs = mkEvents(10*time.Millisecond, nil)
	if _, err := Parse(key(), evs); err != ErrNoResponse {
		t.Fatalf("no-response err = %v", err)
	}
}

func TestLocateBounds(t *testing.T) {
	evs := mkEvents(10*time.Millisecond, []chunkSpec{
		{at: 15 * time.Millisecond, seq: 1, data: []byte("ABCD")},
	})
	s, err := Parse(key(), evs)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 0, 4, 100} {
		if err := s.Locate(bad); err == nil {
			t.Fatalf("Locate(%d) accepted", bad)
		}
	}
	if _, err := s.ArrivalOf(99); err == nil {
		t.Fatal("ArrivalOf(99) accepted")
	}
}

func TestTemporalBoundaryDetectsGap(t *testing.T) {
	// Static burst at 25ms, dynamic burst at 250ms: a dominant gap.
	evs := mkEvents(20*time.Millisecond, []chunkSpec{
		{at: 25 * time.Millisecond, seq: 1, data: []byte("SSSS")},
		{at: 26 * time.Millisecond, seq: 5, data: []byte("SSSS")},
		{at: 250 * time.Millisecond, seq: 9, data: []byte("DDDD")},
		{at: 251 * time.Millisecond, seq: 13, data: []byte("DDDD")},
	})
	s, err := Parse(key(), evs)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := s.TemporalBoundary(10*time.Millisecond, 3)
	if !ok {
		t.Fatal("gap not detected")
	}
	if b != 8 {
		t.Fatalf("boundary = %d, want 8", b)
	}
}

func TestTemporalBoundaryAmbiguous(t *testing.T) {
	// Uniformly spaced packets: no dominant gap.
	var chunks []chunkSpec
	for i := 0; i < 6; i++ {
		chunks = append(chunks, chunkSpec{
			at:   time.Duration(25+10*i) * time.Millisecond,
			seq:  uint64(1 + 4*i),
			data: []byte("XXXX"),
		})
	}
	s, err := Parse(key(), mkEvents(20*time.Millisecond, chunks))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.TemporalBoundary(5*time.Millisecond, 3); ok {
		t.Fatal("ambiguous clustering accepted")
	}
	// Single packet: no gaps at all.
	s2, err := Parse(key(), mkEvents(20*time.Millisecond, []chunkSpec{
		{at: 25 * time.Millisecond, seq: 1, data: []byte("ONLY")},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.TemporalBoundary(time.Millisecond, 2); ok {
		t.Fatal("single-packet session clustered")
	}
}

func TestSessionString(t *testing.T) {
	evs := mkEvents(10*time.Millisecond, []chunkSpec{
		{at: 15 * time.Millisecond, seq: 1, data: []byte("ABCDEFGH")},
	})
	s, err := Parse(key(), evs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Locate(4); err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"rtt=10ms", "bytes=8", "boundary=4", "complete=true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String missing %q: %s", want, out)
		}
	}
}
