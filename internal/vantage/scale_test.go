package vantage

import (
	"hash/fnv"
	"math"
	"testing"

	"fesplit/internal/geo"
)

const scaleN = 100_000

func fingerprintNode(h interface{ Write([]byte) (int, error) }, n Node) {
	_, _ = h.Write([]byte(n.Host))
	_, _ = h.Write([]byte(n.Metro))
	var buf [24]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, math.Float64bits(n.Point.Lat))
	put(8, math.Float64bits(n.Point.Lon))
	put(16, uint64(n.OneWay))
	_, _ = h.Write(buf[:])
}

// TestNewFleetScaleUniqueHosts: at 10⁵ nodes every host ID must be
// unique — the emulator demuxes traffic by host, so a collision would
// silently cross-wire two clients.
func TestNewFleetScaleUniqueHosts(t *testing.T) {
	f := NewFleet(scaleN, geo.WorldMetros(), CampusProfile(), 42)
	seen := make(map[string]struct{}, scaleN)
	for _, n := range f.Nodes {
		if _, dup := seen[string(n.Host)]; dup {
			t.Fatalf("duplicate host ID %s", n.Host)
		}
		seen[string(n.Host)] = struct{}{}
	}
}

// TestNewFleetScaleMetroDeterminism: every node lands on a metro from
// the pool, scattered within the documented ~0.25° box, with every
// metro of the pool actually used at this scale.
func TestNewFleetScaleMetroDeterminism(t *testing.T) {
	metros := geo.WorldMetros()
	byName := make(map[string]geo.Point, len(metros))
	for _, m := range metros {
		byName[m.Name] = m.Point
	}
	f := NewFleet(scaleN, metros, CampusProfile(), 42)
	used := make(map[string]int, len(metros))
	for _, n := range f.Nodes {
		c, ok := byName[n.Metro]
		if !ok {
			t.Fatalf("node %s placed at unknown metro %q", n.Host, n.Metro)
		}
		if math.Abs(n.Point.Lat-c.Lat) > 0.25 || math.Abs(n.Point.Lon-c.Lon) > 0.25 {
			t.Fatalf("node %s scattered outside its metro box: %+v vs centroid %+v", n.Host, n.Point, c)
		}
		used[n.Metro]++
	}
	if len(used) != len(metros) {
		t.Fatalf("only %d/%d metros used at n=%d", len(used), len(metros), scaleN)
	}
}

// TestNewFleetScaleSeedStability: same seed → byte-identical fleet;
// different seed → different fleet. Fingerprints over the full node
// set keep the comparison cheap at 10⁵ nodes.
func TestNewFleetScaleSeedStability(t *testing.T) {
	fp := func(seed int64) uint64 {
		h := fnv.New64a()
		for _, n := range NewFleet(scaleN, geo.WorldMetros(), CampusProfile(), seed).Nodes {
			fingerprintNode(h, n)
		}
		return h.Sum64()
	}
	a1, a2, b := fp(42), fp(42), fp(43)
	if a1 != a2 {
		t.Fatalf("seed 42 not stable: %x vs %x", a1, a2)
	}
	if a1 == b {
		t.Fatalf("seeds 42 and 43 produced identical fleets")
	}
}

// TestSynthNodeDeterministicAndOrderFree: SynthNode(seed, idx) is a
// pure function — identical across calls, call order, and whichever
// subset of the fleet is materialized — with unique hosts and the same
// placement invariants as NewFleet.
func TestSynthNodeDeterministicAndOrderFree(t *testing.T) {
	metros := geo.WorldMetros()
	byName := make(map[string]geo.Point, len(metros))
	for _, m := range metros {
		byName[m.Name] = m.Point
	}
	prof := CampusProfile()
	seen := make(map[string]struct{}, scaleN)
	for idx := 0; idx < scaleN; idx++ {
		n := SynthNode(42, idx, metros, prof)
		if _, dup := seen[string(n.Host)]; dup {
			t.Fatalf("duplicate synth host %s", n.Host)
		}
		seen[string(n.Host)] = struct{}{}
		c, ok := byName[n.Metro]
		if !ok {
			t.Fatalf("synth node %d at unknown metro %q", idx, n.Metro)
		}
		if math.Abs(n.Point.Lat-c.Lat) > 0.25 || math.Abs(n.Point.Lon-c.Lon) > 0.25 {
			t.Fatalf("synth node %d outside metro box", idx)
		}
		if n.OneWay < prof.OneWayMin || n.OneWay >= prof.OneWayMax {
			t.Fatalf("synth node %d access latency %v outside profile [%v,%v)", idx, n.OneWay, prof.OneWayMin, prof.OneWayMax)
		}
	}
	// Random access: re-synthesizing scattered indices in reverse order
	// reproduces the same nodes bit for bit.
	for _, idx := range []int{99_999, 31_337, 4_096, 7, 0} {
		a, b := SynthNode(42, idx, metros, prof), SynthNode(42, idx, metros, prof)
		if a != b {
			t.Fatalf("SynthNode(42,%d) not deterministic: %+v vs %+v", idx, a, b)
		}
	}
	if SynthNode(42, 5, metros, prof) == SynthNode(43, 5, metros, prof) {
		t.Fatalf("different seeds produced identical synth node")
	}
}
