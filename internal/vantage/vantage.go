// Package vantage synthesizes the measurement fleet — the stand-in for
// the paper's 200–250 PlanetLab nodes. Nodes are placed in (or near)
// metro areas, biased toward the university-campus networks where most
// PlanetLab hosts actually live, with campus-grade access links. An
// alternative wireless profile supports the Discussion-section lossy
// last-hop scenario.
package vantage

import (
	"fmt"
	"time"

	"fesplit/internal/cdn"
	"fesplit/internal/geo"
	"fesplit/internal/shard"
	"fesplit/internal/simnet"
	"fesplit/internal/stats"
)

// AccessProfile characterizes a node's last-mile link.
type AccessProfile struct {
	// OneWayMin/OneWayMax bound the node's one-way access latency,
	// drawn uniformly.
	OneWayMin, OneWayMax time.Duration
	// Jitter is per-packet jitter on the access link.
	Jitter time.Duration
	// Loss is the access-link loss rate.
	Loss float64
}

// CampusProfile is a wired university network: sub-millisecond to
// low-millisecond latency, negligible jitter and loss. The paper notes
// its PlanetLab vantage points see "no significant packet losses".
func CampusProfile() AccessProfile {
	return AccessProfile{
		OneWayMin: 300 * time.Microsecond,
		OneWayMax: 2 * time.Millisecond,
		Jitter:    200 * time.Microsecond,
	}
}

// WirelessProfile is the lossy, higher-latency last hop of the
// Discussion section's WiFi what-if.
func WirelessProfile() AccessProfile {
	return AccessProfile{
		OneWayMin: 2 * time.Millisecond,
		OneWayMax: 15 * time.Millisecond,
		Jitter:    4 * time.Millisecond,
		Loss:      0.01,
	}
}

// Node is one measurement vantage point.
type Node struct {
	Host   simnet.HostID
	Point  geo.Point
	Access AccessProfile
	// OneWay is the node's drawn access latency (within the profile
	// bounds).
	OneWay time.Duration
	// Metro is the metro site the node was placed near.
	Metro string
}

// Fleet is a set of vantage points.
type Fleet struct {
	Nodes []Node
}

// NewFleet places n nodes near the given metro pool with the access
// profile, deterministically from seed. Placement scatters each node up
// to ~20 miles from its metro centroid.
func NewFleet(n int, metros []geo.Site, profile AccessProfile, seed int64) *Fleet {
	rng := stats.NewRand(seed)
	f := &Fleet{Nodes: make([]Node, n)}
	for i := range f.Nodes {
		m := metros[rng.Intn(len(metros))]
		pt := geo.Point{
			Lat: m.Point.Lat + (rng.Float64()-0.5)*0.5,
			Lon: m.Point.Lon + (rng.Float64()-0.5)*0.5,
		}
		span := profile.OneWayMax - profile.OneWayMin
		oneWay := profile.OneWayMin
		if span > 0 {
			oneWay += time.Duration(rng.Int63n(int64(span)))
		}
		f.Nodes[i] = Node{
			Host:   simnet.HostID(fmt.Sprintf("node-%03d", i)),
			Point:  pt,
			Access: profile,
			OneWay: oneWay,
			Metro:  m.Name,
		}
	}
	return f
}

// SynthNode synthesizes node idx of a virtual fleet in O(1), without
// materializing any other node: the per-node RNG is seeded by a
// SplitMix64 mix of (seed, idx), so any slot of a million-client fleet
// can be produced — and byte-identically re-produced — independently of
// order, subset, or shard layout. The draw structure mirrors NewFleet's
// (metro pick, centroid scatter, access-latency draw) but the random
// streams differ: SynthNode defines its own fleet, not a random-access
// view of NewFleet's sequential one. Host IDs use a distinct
// "client-%07d" namespace so synthetic clients can coexist with a
// materialized fleet on one network.
func SynthNode(seed int64, idx int, metros []geo.Site, profile AccessProfile) Node {
	rng := stats.NewRand(shard.Mix(seed, uint64(idx)))
	m := metros[rng.Intn(len(metros))]
	pt := geo.Point{
		Lat: m.Point.Lat + (rng.Float64()-0.5)*0.5,
		Lon: m.Point.Lon + (rng.Float64()-0.5)*0.5,
	}
	span := profile.OneWayMax - profile.OneWayMin
	oneWay := profile.OneWayMin
	if span > 0 {
		oneWay += time.Duration(rng.Int63n(int64(span)))
	}
	return Node{
		Host:   simnet.HostID(fmt.Sprintf("client-%07d", idx)),
		Point:  pt,
		Access: profile,
		OneWay: oneWay,
		Metro:  m.Name,
	}
}

// DefaultFleet builds the standard 250-node campus fleet over the world
// metro pool, mirroring the paper's PlanetLab coverage.
func DefaultFleet(seed int64) *Fleet {
	return NewFleet(250, geo.WorldMetros(), CampusProfile(), seed)
}

// Wire connects every node to every FE of the deployment.
func (f *Fleet) Wire(d *cdn.Deployment) {
	for _, n := range f.Nodes {
		d.WireClient(n.Host, n.Point, n.OneWay, n.Access.Jitter, n.Access.Loss)
	}
}

// WireToBEs additionally connects every node straight to the BEs (for
// the no-FE baseline).
func (f *Fleet) WireToBEs(d *cdn.Deployment) {
	for _, n := range f.Nodes {
		d.WireClientToBEs(n.Host, n.Point, n.OneWay, n.Access.Jitter, n.Access.Loss)
	}
}

// ByHost returns the node with the given host ID, or nil.
func (f *Fleet) ByHost(h simnet.HostID) *Node {
	for i := range f.Nodes {
		if f.Nodes[i].Host == h {
			return &f.Nodes[i]
		}
	}
	return nil
}
