package vantage

import (
	"testing"

	"fesplit/internal/geo"
)

func TestDefaultFleetSizeAndDeterminism(t *testing.T) {
	a, b := DefaultFleet(3), DefaultFleet(3)
	if len(a.Nodes) != 250 {
		t.Fatalf("size = %d", len(a.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	c := DefaultFleet(4)
	same := 0
	for i := range a.Nodes {
		if a.Nodes[i].Point == c.Nodes[i].Point {
			same++
		}
	}
	if same == len(a.Nodes) {
		t.Fatal("different seeds produced identical placement")
	}
}

func TestNodesNearTheirMetro(t *testing.T) {
	metros := geo.USMetros()
	byName := map[string]geo.Point{}
	for _, m := range metros {
		byName[m.Name] = m.Point
	}
	f := NewFleet(100, metros, CampusProfile(), 9)
	for _, n := range f.Nodes {
		center, ok := byName[n.Metro]
		if !ok {
			t.Fatalf("node %s has unknown metro %s", n.Host, n.Metro)
		}
		if d := geo.DistanceMiles(n.Point, center); d > 40 {
			t.Fatalf("node %s is %.0f miles from its metro", n.Host, d)
		}
	}
}

func TestAccessWithinProfileBounds(t *testing.T) {
	p := WirelessProfile()
	f := NewFleet(50, geo.WorldMetros(), p, 11)
	for _, n := range f.Nodes {
		if n.OneWay < p.OneWayMin || n.OneWay > p.OneWayMax {
			t.Fatalf("node %s access %v outside [%v, %v]",
				n.Host, n.OneWay, p.OneWayMin, p.OneWayMax)
		}
		if n.Access != p {
			t.Fatal("profile not recorded on node")
		}
	}
}

func TestProfileContrast(t *testing.T) {
	c, w := CampusProfile(), WirelessProfile()
	if c.Loss != 0 {
		t.Fatalf("campus loss = %v, paper observed none", c.Loss)
	}
	if w.Loss <= 0 || w.Jitter <= c.Jitter {
		t.Fatalf("wireless profile not worse: %+v vs %+v", w, c)
	}
}

func TestByHost(t *testing.T) {
	f := DefaultFleet(5)
	n := f.ByHost("node-042")
	if n == nil || n.Host != "node-042" {
		t.Fatalf("ByHost = %+v", n)
	}
	if f.ByHost("absent") != nil {
		t.Fatal("bogus host resolved")
	}
}

func TestHostNamesUnique(t *testing.T) {
	f := DefaultFleet(6)
	seen := map[string]bool{}
	for _, n := range f.Nodes {
		if seen[string(n.Host)] {
			t.Fatalf("duplicate host %s", n.Host)
		}
		seen[string(n.Host)] = true
	}
}
