// Package viz renders small, self-contained SVG charts for the HTML
// report: CDF step plots, scatter plots, box plots and span timelines.
// Everything is deterministic — fixed-precision coordinates, sorted
// iteration, a fixed palette — so same-seed reports are byte-identical.
// The package has no dependencies beyond the standard library.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Options configure a chart frame.
type Options struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height default to 640×360.
	Width, Height int
	// Step renders series as right-continuous step lines (CDFs).
	Step bool
	// Lines connects points in order instead of drawing markers.
	Lines bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 640
	}
	if o.Height <= 0 {
		o.Height = 360
	}
	return o
}

// palette is the fixed series color cycle.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// margins of the plot area inside the SVG viewport.
const (
	marginL = 56
	marginR = 16
	marginT = 28
	marginB = 44
)

// num renders a coordinate with fixed precision so output bytes are
// reproducible across runs and platforms.
func num(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return fmt.Sprintf("%.2f", v)
}

// Esc escapes text for SVG/XML content and attributes.
func Esc(s string) string {
	return xmlEscaper.Replace(s)
}

var xmlEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&#39;",
)

// frame maps data coordinates to pixel coordinates.
type frame struct {
	o                      Options
	xmin, xmax, ymin, ymax float64
}

func (f frame) px(x float64) float64 {
	w := float64(f.o.Width - marginL - marginR)
	if f.xmax == f.xmin {
		return marginL + w/2
	}
	return marginL + (x-f.xmin)/(f.xmax-f.xmin)*w
}

func (f frame) py(y float64) float64 {
	h := float64(f.o.Height - marginT - marginB)
	if f.ymax == f.ymin {
		return marginT + h/2
	}
	return marginT + h - (y-f.ymin)/(f.ymax-f.ymin)*h
}

// niceStep picks a 1/2/5×10ⁿ tick step producing ~n ticks over span.
func niceStep(span float64, n int) float64 {
	if span <= 0 || n <= 0 {
		return 1
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag <= 1:
		return mag
	case raw/mag <= 2:
		return 2 * mag
	case raw/mag <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

// fmtTick renders an axis tick value compactly.
func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// header opens the SVG element and draws title and axis labels.
func (f frame) header(b *strings.Builder) {
	o := f.o
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`,
		o.Width, o.Height, o.Width, o.Height)
	b.WriteString("\n")
	fmt.Fprintf(b, `<rect x="0" y="0" width="%d" height="%d" fill="#ffffff"/>`, o.Width, o.Height)
	b.WriteString("\n")
	if o.Title != "" {
		fmt.Fprintf(b, `<text x="%s" y="16" text-anchor="middle" font-size="13" fill="#222222">%s</text>`,
			num(float64(o.Width)/2), Esc(o.Title))
		b.WriteString("\n")
	}
	if o.XLabel != "" {
		fmt.Fprintf(b, `<text x="%s" y="%d" text-anchor="middle" fill="#444444">%s</text>`,
			num(float64(marginL)+float64(o.Width-marginL-marginR)/2), o.Height-8, Esc(o.XLabel))
		b.WriteString("\n")
	}
	if o.YLabel != "" {
		cy := float64(marginT) + float64(o.Height-marginT-marginB)/2
		fmt.Fprintf(b, `<text x="14" y="%s" text-anchor="middle" fill="#444444" transform="rotate(-90 14 %s)">%s</text>`,
			num(cy), num(cy), Esc(o.YLabel))
		b.WriteString("\n")
	}
}

// axes draws the plot box, grid lines and tick labels.
func (f frame) axes(b *strings.Builder) {
	o := f.o
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#888888"/>`,
		marginL, marginT, o.Width-marginL-marginR, o.Height-marginT-marginB)
	b.WriteString("\n")
	xs := niceStep(f.xmax-f.xmin, 6)
	for v := math.Ceil(f.xmin/xs) * xs; v <= f.xmax+xs/1e6; v += xs {
		x := f.px(v)
		fmt.Fprintf(b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="#dddddd"/>`,
			num(x), marginT, num(x), o.Height-marginB)
		fmt.Fprintf(b, `<text x="%s" y="%d" text-anchor="middle" fill="#444444">%s</text>`,
			num(x), o.Height-marginB+14, fmtTick(v))
		b.WriteString("\n")
	}
	ys := niceStep(f.ymax-f.ymin, 5)
	for v := math.Ceil(f.ymin/ys) * ys; v <= f.ymax+ys/1e6; v += ys {
		y := f.py(v)
		fmt.Fprintf(b, `<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="#dddddd"/>`,
			marginL, num(y), o.Width-marginR, num(y))
		fmt.Fprintf(b, `<text x="%d" y="%s" text-anchor="end" fill="#444444">%s</text>`,
			marginL-4, num(y), fmtTick(v))
		b.WriteString("\n")
	}
}

// legend draws the series names in the top-right corner of the plot.
func (f frame) legend(b *strings.Builder, names []string) {
	x := float64(f.o.Width - marginR - 8)
	y := float64(marginT + 14)
	for i, name := range names {
		if name == "" {
			continue
		}
		c := palette[i%len(palette)]
		fmt.Fprintf(b, `<rect x="%s" y="%s" width="10" height="10" fill="%s"/>`,
			num(x-10), num(y-9), c)
		fmt.Fprintf(b, `<text x="%s" y="%s" text-anchor="end" fill="#222222">%s</text>`,
			num(x-14), num(y), Esc(name))
		b.WriteString("\n")
		y += 14
	}
}

// bounds computes the data extent across all series, padded slightly.
func bounds(series []Series) (xmin, xmax, ymin, ymax float64) {
	first := true
	for _, s := range series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first {
		return 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax
}

// Plot renders a multi-series chart: markers by default, connected
// lines with Options.Lines, right-continuous steps with Options.Step.
func Plot(series []Series, o Options) string {
	o = o.withDefaults()
	var b strings.Builder
	xmin, xmax, ymin, ymax := bounds(series)
	f := frame{o: o, xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax}
	f.header(&b)
	f.axes(&b)
	var names []string
	for i, s := range series {
		c := palette[i%len(palette)]
		names = append(names, s.Name)
		switch {
		case o.Step, o.Lines:
			if len(s.X) == 0 {
				continue
			}
			var d strings.Builder
			for j := range s.X {
				x, y := f.px(s.X[j]), f.py(s.Y[j])
				if j == 0 {
					fmt.Fprintf(&d, "M%s %s", num(x), num(y))
					continue
				}
				if o.Step {
					fmt.Fprintf(&d, " H%s V%s", num(x), num(y))
				} else {
					fmt.Fprintf(&d, " L%s %s", num(x), num(y))
				}
			}
			fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`, d.String(), c)
			b.WriteString("\n")
		default:
			for j := range s.X {
				fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s" fill-opacity="0.7"/>`,
					num(f.px(s.X[j])), num(f.py(s.Y[j])), c)
			}
			b.WriteString("\n")
		}
	}
	if len(series) > 1 {
		f.legend(&b, names)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Box is the five-number summary of one labeled distribution.
type Box struct {
	Label                    string
	Min, Q1, Median, Q3, Max float64
}

// BoxPlot renders labeled box-and-whisker columns (the Figure-8 view).
func BoxPlot(boxes []Box, o Options) string {
	o = o.withDefaults()
	var b strings.Builder
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, bx := range boxes {
		ymin = math.Min(ymin, bx.Min)
		ymax = math.Max(ymax, bx.Max)
	}
	if len(boxes) == 0 || ymin > ymax {
		ymin, ymax = 0, 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	f := frame{o: o, xmin: 0, xmax: float64(len(boxes)), ymin: ymin, ymax: ymax}
	f.header(&b)
	// Y grid only; the X axis carries one label per box.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#888888"/>`,
		marginL, marginT, o.Width-marginL-marginR, o.Height-marginT-marginB)
	b.WriteString("\n")
	ys := niceStep(ymax-ymin, 5)
	for v := math.Ceil(ymin/ys) * ys; v <= ymax+ys/1e6; v += ys {
		y := f.py(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%s" x2="%d" y2="%s" stroke="#dddddd"/>`,
			marginL, num(y), o.Width-marginR, num(y))
		fmt.Fprintf(&b, `<text x="%d" y="%s" text-anchor="end" fill="#444444">%s</text>`,
			marginL-4, num(y), fmtTick(v))
		b.WriteString("\n")
	}
	slot := (f.px(1) - f.px(0))
	half := math.Min(slot*0.3, 18)
	for i, bx := range boxes {
		cx := f.px(float64(i) + 0.5)
		c := palette[0]
		// whiskers
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s"/>`,
			num(cx), num(f.py(bx.Min)), num(cx), num(f.py(bx.Q1)), c)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s"/>`,
			num(cx), num(f.py(bx.Q3)), num(cx), num(f.py(bx.Max)), c)
		// box
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s" fill-opacity="0.25" stroke="%s"/>`,
			num(cx-half), num(f.py(bx.Q3)), num(2*half), num(f.py(bx.Q1)-f.py(bx.Q3)), c, c)
		// median
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="#d62728" stroke-width="1.5"/>`,
			num(cx-half), num(f.py(bx.Median)), num(cx+half), num(f.py(bx.Median)))
		b.WriteString("\n")
		if bx.Label != "" {
			fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="end" fill="#444444" font-size="9" transform="rotate(-45 %s %d)">%s</text>`,
				num(cx), o.Height-marginB+12, num(cx), o.Height-marginB+12, Esc(bx.Label))
			b.WriteString("\n")
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Interval is one bar of a timeline chart: a named phase on a track.
type Interval struct {
	// Track names the row group (e.g. "client", "frontend").
	Track string
	// Name labels the bar.
	Name string
	// Start and End are in the timeline's unit (milliseconds here).
	Start, End float64
	// Depth indents nested phases within their track.
	Depth int
}

// Timeline renders one query's phases as horizontal bars, one row per
// interval, grouped by track in input order (the exemplar view).
func Timeline(iv []Interval, o Options) string {
	o = o.withDefaults()
	rows := len(iv)
	if rows == 0 {
		rows = 1
	}
	rowH := 18
	o.Height = marginT + marginB + rows*rowH
	xmin, xmax := math.Inf(1), math.Inf(-1)
	for _, v := range iv {
		xmin = math.Min(xmin, v.Start)
		xmax = math.Max(xmax, v.End)
	}
	if len(iv) == 0 || xmin > xmax {
		xmin, xmax = 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	f := frame{o: o, xmin: xmin, xmax: xmax, ymin: 0, ymax: float64(rows)}
	var b strings.Builder
	f.header(&b)
	xs := niceStep(xmax-xmin, 6)
	for v := math.Ceil(xmin/xs) * xs; v <= xmax+xs/1e6; v += xs {
		x := f.px(v)
		fmt.Fprintf(&b, `<line x1="%s" y1="%d" x2="%s" y2="%d" stroke="#dddddd"/>`,
			num(x), marginT, num(x), o.Height-marginB)
		fmt.Fprintf(&b, `<text x="%s" y="%d" text-anchor="middle" fill="#444444">%s</text>`,
			num(x), o.Height-marginB+14, fmtTick(v))
		b.WriteString("\n")
	}
	trackColor := map[string]string{}
	for i, v := range iv {
		c, ok := trackColor[v.Track]
		if !ok {
			c = palette[len(trackColor)%len(palette)]
			trackColor[v.Track] = c
		}
		y := float64(marginT + i*rowH)
		x0, x1 := f.px(v.Start), f.px(v.End)
		if x1 < x0+1 {
			x1 = x0 + 1
		}
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%d" fill="%s" fill-opacity="0.6"/>`,
			num(x0), num(y+3), num(x1-x0), rowH-6, c)
		label := v.Name
		if v.Track != "" {
			label = v.Track + ": " + v.Name
		}
		fmt.Fprintf(&b, `<text x="%s" y="%s" fill="#222222" font-size="10">%s</text>`,
			num(math.Max(x0+3, float64(marginL)+2+float64(v.Depth)*8)), num(y+float64(rowH-6)), Esc(label))
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}
