package viz

import (
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the SVG with the XML decoder, failing on any
// malformed markup (unescaped text, unclosed tags).
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("malformed SVG: %v\n%s", err, svg)
		}
	}
}

func sampleSeries() []Series {
	return []Series{
		{Name: `goo<gle&"like"`, X: []float64{1, 2, 3, 4}, Y: []float64{10, 20, 15, 40}},
		{Name: "bing-like", X: []float64{1, 2, 3}, Y: []float64{5, 25, 35}},
	}
}

func TestPlotWellFormedAndDeterministic(t *testing.T) {
	for _, o := range []Options{
		{Title: "scatter <&>", XLabel: "x", YLabel: "y"},
		{Title: "steps", Step: true},
		{Title: "lines", Lines: true},
	} {
		a := Plot(sampleSeries(), o)
		b := Plot(sampleSeries(), o)
		if a != b {
			t.Fatalf("%s: Plot not deterministic", o.Title)
		}
		wellFormed(t, a)
		if !strings.Contains(a, "<svg") || !strings.Contains(a, "</svg>") {
			t.Fatalf("%s: no svg element", o.Title)
		}
	}
	// Empty input must still render a valid frame.
	wellFormed(t, Plot(nil, Options{Title: "empty"}))
}

func TestBoxPlotWellFormed(t *testing.T) {
	boxes := []Box{
		{Label: "node<1>", Min: 1, Q1: 2, Median: 3, Q3: 5, Max: 9},
		{Label: "node-2", Min: 2, Q1: 3, Median: 4, Q3: 6, Max: 7},
	}
	s := BoxPlot(boxes, Options{Title: "overall", YLabel: "ms"})
	wellFormed(t, s)
	if s != BoxPlot(boxes, Options{Title: "overall", YLabel: "ms"}) {
		t.Fatal("BoxPlot not deterministic")
	}
	wellFormed(t, BoxPlot(nil, Options{}))
}

func TestTimelineWellFormed(t *testing.T) {
	iv := []Interval{
		{Track: "client", Name: "query", Start: 0, End: 120},
		{Track: "client", Name: "handshake", Start: 0, End: 30, Depth: 1},
		{Track: "frontend", Name: `fe-fetch "x"`, Start: 35, End: 100, Depth: 1},
	}
	s := Timeline(iv, Options{Title: "exemplar"})
	wellFormed(t, s)
	if s != Timeline(iv, Options{Title: "exemplar"}) {
		t.Fatal("Timeline not deterministic")
	}
	for _, want := range []string{"client: query", "frontend: fe-fetch &quot;x&quot;"} {
		if !strings.Contains(s, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	wellFormed(t, Timeline(nil, Options{}))
}

func TestNiceStep(t *testing.T) {
	for _, tc := range []struct {
		span float64
		n    int
		want float64
	}{
		{100, 5, 20},
		{1, 5, 0.2},
		{7, 5, 2},
		{0, 5, 1},
	} {
		if got := niceStep(tc.span, tc.n); got != tc.want {
			t.Errorf("niceStep(%v, %d) = %v, want %v", tc.span, tc.n, got, tc.want)
		}
	}
}
