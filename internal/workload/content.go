package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"fesplit/internal/stats"
)

// ContentSpec parameterizes search-result synthesis for one service.
// Sizes reflect 2011-era result pages: a few KB of static boilerplate
// and tens of KB of dynamic results.
type ContentSpec struct {
	// ServiceName brands the static portion (it must be identical for
	// every query to the same service, and differ across services).
	ServiceName string
	// StaticSize is the exact byte length of the static prefix.
	StaticSize int
	// DynamicBase is the base byte length of the dynamic portion.
	DynamicBase int
	// DynamicPerTerm adds bytes per query term (refined queries return
	// richer snippets).
	DynamicPerTerm int
}

// DefaultContentSpec mirrors measured 2011 SERP proportions.
func DefaultContentSpec(service string) ContentSpec {
	return ContentSpec{
		ServiceName:    service,
		StaticSize:     8 << 10,  // 8 KB: HTTP+HTML headers, CSS, menu bar
		DynamicBase:    20 << 10, // 20 KB: results + ads
		DynamicPerTerm: 512,
	}
}

// StaticPrefix returns the service's static content portion. It is a
// pure function of the spec — identical for every query — so the
// analyzer's longest-common-prefix content analysis identifies it, just
// as the paper's cross-keyword content comparison did. The prefix
// contains the recognizable boilerplate the paper names: HTML header,
// CSS styles, and the static menu bar ("Videos, News, Shopping...").
func (s ContentSpec) StaticPrefix() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html>\n<head>\n<title>%s search</title>\n", s.ServiceName)
	b.WriteString("<style>\nbody{font:13px arial}#menu{background:#eee}.res{margin:6px}\n")
	b.WriteString(".ad{color:#060}.url{color:#093}\n</style>\n</head>\n<body>\n")
	b.WriteString(`<div id="menu">Web | Videos | News | Shopping | Images | Maps | More</div>` + "\n")
	fmt.Fprintf(&b, `<div id="logo" service=%q>`, s.ServiceName)
	b.WriteString("\n<!-- static-cache-boundary padding: ")
	// Deterministic filler to hit StaticSize exactly.
	const filler = "abcdefghijklmnopqrstuvwxyz0123456789"
	for b.Len() < s.StaticSize-4 {
		n := s.StaticSize - 4 - b.Len()
		if n > len(filler) {
			n = len(filler)
		}
		b.WriteString(filler[:n])
	}
	b.WriteString(" -->\n")
	out := b.Bytes()
	if len(out) > s.StaticSize {
		out = out[:s.StaticSize]
	}
	return out
}

// DynamicBody synthesizes the query-dependent portion: dynamic menu
// entries, search results and ads. The rng makes ad blocks and snippet
// lengths vary run to run (deterministically per seed); the keyword
// string appears throughout, so no two distinct queries share a body.
func (s ContentSpec) DynamicBody(q Query, rng *rand.Rand) []byte {
	target := s.DynamicSize(q)
	// Bodies are built with plain appends into one pre-sized slice: a
	// fmt.Fprintf per result line boxes every integer argument, and at
	// tens of thousands of bodies per study that dominated the allocation
	// profile. Output bytes and rng call order are unchanged (the
	// differential workload test pins both against a fmt reference).
	b := make([]byte, 0, target+512)
	b = append(b, `<div id="dynmenu">related: `...)
	b = append(b, q.Keywords...)
	b = append(b, ` images, `...)
	b = append(b, q.Keywords...)
	b = append(b, " news</div>\n"...)
	i := 0
	for len(b) < target-128 {
		i++
		if rng.Float64() < 0.15 {
			b = append(b, `<div class="ad">Ad `...)
			b = strconv.AppendInt(b, int64(i), 10)
			b = append(b, ` — buy `...)
			b = append(b, q.Keywords...)
			b = append(b, ` now! sponsored-link-`...)
			b = appendPad6(b, rng.Intn(1e6))
			b = append(b, "</div>\n"...)
			continue
		}
		b = append(b, `<div class="res"><a href="http://example-`...)
		b = appendPad6(b, rng.Intn(1e6))
		b = append(b, `.org/`...)
		b = strconv.AppendInt(b, int64(q.ID), 10)
		b = append(b, `">`...)
		b = append(b, q.Keywords...)
		b = append(b, ` — result `...)
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, `</a><span class="url">example-`...)
		b = appendPad6(b, rng.Intn(1e6))
		b = append(b, `.org</span><p>snippet about `...)
		b = append(b, q.Keywords...)
		// Variable-length snippet filler.
		n := 40 + rng.Intn(120)
		for j := 0; j < n; j++ {
			b = append(b, byte('a'+(i+j)%26))
		}
		b = append(b, "</p></div>\n"...)
	}
	b = append(b, "</div>\n</body>\n</html>\n<!-- qid="...)
	b = strconv.AppendInt(b, int64(q.ID), 10)
	b = append(b, " -->"...)
	return b
}

// appendPad6 appends v zero-padded to six digits — the %06d of the
// sponsored-link and example-host IDs, which are always drawn from
// [0, 1e6).
func appendPad6(b []byte, v int) []byte {
	return append(b,
		byte('0'+v/100000%10), byte('0'+v/10000%10), byte('0'+v/1000%10),
		byte('0'+v/100%10), byte('0'+v/10%10), byte('0'+v%10))
}

// DynamicSize returns the target dynamic-portion size for a query.
func (s ContentSpec) DynamicSize(q Query) int {
	return s.DynamicBase + s.DynamicPerTerm*q.Terms
}

// CostModel maps a query to back-end processing time — the paper's
// T_proc, the dominant component of the FE-BE fetch time that Section 5
// estimates via the regression intercept (~260 ms for Bing, ~34 ms for
// Google).
type CostModel struct {
	// Base is the floor processing time of any query.
	Base time.Duration
	// PerTerm adds cost per query term (complex queries cost more).
	PerTerm time.Duration
	// PopularDiscount scales cost for head-of-Zipf queries whose
	// results the back-end index serves from warm internal caches
	// (NOT the FE result cache — the paper shows FEs don't cache
	// results). 1.0 disables the effect.
	PopularDiscount float64
	// CV is the coefficient of variation of the lognormal noise on
	// each sample: Bing's fetch times are "larger and show higher
	// variability", Google's "smaller and more stable".
	CV float64
	// LoadAmplitude scales a slowly-varying AR(1) load term added
	// multiplicatively: 0.2 means ±~20% swings.
	LoadAmplitude float64
}

// Sample draws the processing time of one query. load should be the
// current value of the data center's AR(1) load process in [-1, 1]-ish
// range (pass 0 for an unloaded BE).
func (m CostModel) Sample(q Query, load float64, rng *rand.Rand) time.Duration {
	mean := float64(m.Base) + float64(m.PerTerm)*float64(q.Terms)
	if m.PopularDiscount > 0 && m.PopularDiscount < 1 && q.Rank < NumRanks/100 {
		mean *= m.PopularDiscount
	}
	mean *= 1 + m.LoadAmplitude*load
	if mean < float64(time.Millisecond) {
		mean = float64(time.Millisecond)
	}
	if m.CV <= 0 {
		return time.Duration(mean)
	}
	ln := stats.LogNormalFromMeanCV(mean, m.CV)
	return time.Duration(ln.Draw(rng))
}
