// Package workload generates the search-query workload and the
// synthesized search-result content for the simulated services.
//
// The paper submits keyword queries of varying popularity, granularity
// and complexity (Section 3, "Choice and Effect of Search Queries") and
// observes that the dynamic portion of the response — and the back-end
// time to generate it — depends strongly on the query class, while the
// static portion does not. This package reproduces those degrees of
// freedom: a deterministic keyword generator with four query classes, a
// response-content synthesizer that emits a service-wide static prefix
// followed by a query-dependent dynamic body, and a back-end cost model
// mapping query class and popularity to processing time.
package workload

import (
	"fmt"
	"math/rand"
	"net/url"
	"strconv"
	"strings"

	"fesplit/internal/stats"
)

// Class labels the paper's query categories.
type Class uint8

// Query classes.
const (
	// ClassPopular is a short, popular query from the head of the
	// popularity distribution — like the Bing main-page trending list.
	ClassPopular Class = iota
	// ClassGranular is a concatenated, increasingly refined query
	// ("computer science department at university of minnesota").
	ClassGranular
	// ClassComplex is a long, many-term query.
	ClassComplex
	// ClassMixed combines terms that are not correlated
	// ("computer and potato"), defeating back-end result caches.
	ClassMixed
)

// Classes lists all query classes in presentation order.
func Classes() []Class {
	return []Class{ClassPopular, ClassGranular, ClassComplex, ClassMixed}
}

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassPopular:
		return "popular"
	case ClassGranular:
		return "granular"
	case ClassComplex:
		return "complex"
	case ClassMixed:
		return "mixed"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Query is one search query.
type Query struct {
	ID       int
	Class    Class
	Keywords string
	Terms    int // number of whitespace-separated terms
	Rank     int // popularity rank; 0 = most popular
}

// vocab is the embedded vocabulary; keyword strings are deterministic
// combinations of these words.
var vocab = []string{
	"computer", "science", "department", "university", "minnesota",
	"cloud", "computing", "network", "measurement", "performance",
	"server", "front", "end", "backend", "data", "center", "content",
	"distribution", "dynamic", "static", "search", "engine", "query",
	"response", "latency", "bandwidth", "protocol", "internet",
	"weather", "news", "video", "music", "movie", "game", "sports",
	"football", "baseball", "recipe", "restaurant", "travel", "hotel",
	"flight", "map", "direction", "stock", "market", "finance", "bank",
	"health", "doctor", "symptom", "medicine", "school", "college",
	"history", "geography", "physics", "chemistry", "biology", "math",
	"potato", "tomato", "garden", "camera", "phone", "laptop", "tablet",
	"battery", "charger", "wireless", "router", "printer", "monitor",
	"keyboard", "election", "president", "congress", "policy", "economy",
	"climate", "energy", "solar", "electric", "vehicle", "highway",
	"airport", "museum", "library", "theater", "concert", "festival",
	"holiday", "birthday", "wedding", "fashion", "shoes", "jacket",
	"coffee", "pizza", "burger", "salad", "dessert", "chocolate",
}

// Generator produces deterministic query streams. A Generator is not
// safe for concurrent use; create one per experiment with a fixed seed.
type Generator struct {
	rng  *rand.Rand
	zipf *stats.Zipf
	seq  int
}

// NumRanks is the size of the popularity universe, matching the paper's
// 40,000-keyword experiment pool.
const NumRanks = 40000

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:  stats.NewRand(seed),
		zipf: stats.NewZipf(NumRanks, 1.01),
	}
}

// KeywordForRank returns the canonical keyword string of a popularity
// rank: deterministic, unique per rank, composed of vocabulary words.
func KeywordForRank(rank int) string {
	a := vocab[rank%len(vocab)]
	b := vocab[(rank/len(vocab))%len(vocab)]
	if rank < len(vocab) {
		return a
	}
	c := rank / (len(vocab) * len(vocab))
	if c == 0 {
		return a + " " + b
	}
	return fmt.Sprintf("%s %s %d", a, b, c)
}

// termCount returns the term-count range per class.
func termCount(c Class, rng *rand.Rand) int {
	switch c {
	case ClassPopular:
		return 1 + rng.Intn(2) // 1-2
	case ClassGranular:
		return 3 + rng.Intn(4) // 3-6
	case ClassComplex:
		return 6 + rng.Intn(5) // 6-10
	default: // ClassMixed
		return 2 + rng.Intn(3) // 2-4
	}
}

// Query generates one query of the given class.
func (g *Generator) Query(c Class) Query {
	g.seq++
	terms := termCount(c, g.rng)
	var rank int
	switch c {
	case ClassPopular:
		// Head of the Zipf: resample until we land in the top 1%.
		rank = g.zipf.Draw(g.rng) % (NumRanks / 100)
	case ClassMixed:
		// Uncorrelated terms land in the deep tail.
		rank = NumRanks/2 + g.rng.Intn(NumRanks/2)
	default:
		rank = g.zipf.Draw(g.rng)
	}
	words := make([]string, terms)
	base := rank
	for i := range words {
		if c == ClassMixed {
			// Deliberately uncorrelated vocabulary picks.
			words[i] = vocab[g.rng.Intn(len(vocab))]
		} else {
			words[i] = vocab[(base+i*7)%len(vocab)]
		}
	}
	return Query{
		ID:       g.seq,
		Class:    c,
		Keywords: strings.Join(words, " "),
		Terms:    terms,
		Rank:     rank,
	}
}

// Corpus generates n queries of a class.
func (g *Generator) Corpus(n int, c Class) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.Query(c)
	}
	return out
}

// DistinctQueries generates n queries guaranteed to have distinct
// keyword strings — the "each node submits a different search query"
// caching-detection experiment. All queries share the same term count
// and popularity band so the two probe phases differ only in keyword
// identity, not in back-end cost profile.
func (g *Generator) DistinctQueries(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		g.seq++
		// Ranks stay outside the popular head so no query receives the
		// back-end popularity discount.
		rank := NumRanks/50 + (i*37)%(NumRanks-NumRanks/50)
		words := []string{
			vocab[rank%len(vocab)],
			vocab[(rank+7)%len(vocab)],
			vocab[(rank+13)%len(vocab)],
			fmt.Sprintf("q%d", i),
		}
		kw := strings.Join(words, " ")
		out[i] = Query{
			ID:       g.seq,
			Class:    ClassGranular,
			Keywords: kw,
			Terms:    len(words),
			Rank:     rank,
		}
	}
	return out
}

// Suggestions returns the top-n keyword strings by popularity — the
// drop-down "search suggestion box" list the paper harvested for its
// commonly-searched keywords.
func Suggestions(n int) []string {
	if n < 0 {
		n = 0
	}
	if n > NumRanks {
		n = NumRanks
	}
	out := make([]string, n)
	for i := range out {
		out[i] = KeywordForRank(i)
	}
	return out
}

// UnsuggestedKeyword returns a keyword string guaranteed not to appear
// in any Suggestions list — the paper's "search words not listed by the
// suggestion bar".
func UnsuggestedKeyword(i int) string {
	return fmt.Sprintf("unlisted term %d xq%dz", i, i*7919)
}

// Path renders the query as a search URL path, like the emulator's GET.
// Query metadata (class, rank, id) rides along as parameters so the
// back-end cost model can recover it from the wire — the in-house
// emulator controls both ends, like the paper's.
func (q Query) Path() string {
	v := url.Values{}
	v.Set("q", q.Keywords)
	v.Set("c", fmt.Sprint(uint8(q.Class)))
	v.Set("r", fmt.Sprint(q.Rank))
	v.Set("id", fmt.Sprint(q.ID))
	return "/search?" + v.Encode()
}

// ParsePath reconstructs a Query from a search URL path produced by
// (Query).Path.
func ParsePath(path string) (Query, error) {
	u, err := url.Parse(path)
	if err != nil {
		return Query{}, fmt.Errorf("workload: bad query path %q: %v", path, err)
	}
	if u.Path != "/search" {
		return Query{}, fmt.Errorf("workload: not a search path: %q", path)
	}
	v := u.Query()
	kw := v.Get("q")
	if kw == "" {
		return Query{}, fmt.Errorf("workload: missing q parameter in %q", path)
	}
	q := Query{
		Keywords: kw,
		Terms:    len(strings.Fields(kw)),
	}
	if c, err := strconv.Atoi(v.Get("c")); err == nil {
		q.Class = Class(c)
	}
	if r, err := strconv.Atoi(v.Get("r")); err == nil {
		q.Rank = r
	}
	if id, err := strconv.Atoi(v.Get("id")); err == nil {
		q.ID = id
	}
	return q, nil
}
