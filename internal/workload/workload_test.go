package workload

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fesplit/internal/stats"
)

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassPopular: "popular", ClassGranular: "granular",
		ClassComplex: "complex", ClassMixed: "mixed", Class(9): "class(9)",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("%v.String() = %q, want %q", uint8(c), c.String(), s)
		}
	}
	if len(Classes()) != 4 {
		t.Fatalf("Classes() = %v", Classes())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, g2 := NewGenerator(5), NewGenerator(5)
	for i := 0; i < 50; i++ {
		a, b := g1.Query(ClassGranular), g2.Query(ClassGranular)
		if a.Keywords != b.Keywords || a.Rank != b.Rank {
			t.Fatalf("generators diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestQueryTermRanges(t *testing.T) {
	g := NewGenerator(1)
	ranges := map[Class][2]int{
		ClassPopular:  {1, 2},
		ClassGranular: {3, 6},
		ClassComplex:  {6, 10},
		ClassMixed:    {2, 4},
	}
	for class, r := range ranges {
		for i := 0; i < 200; i++ {
			q := g.Query(class)
			if q.Terms < r[0] || q.Terms > r[1] {
				t.Fatalf("%v query has %d terms, want %v", class, q.Terms, r)
			}
			if got := len(strings.Fields(q.Keywords)); got != q.Terms {
				t.Fatalf("keyword %q has %d fields, Terms=%d", q.Keywords, got, q.Terms)
			}
		}
	}
}

func TestPopularQueriesHaveLowRanks(t *testing.T) {
	g := NewGenerator(2)
	for i := 0; i < 500; i++ {
		if q := g.Query(ClassPopular); q.Rank >= NumRanks/100 {
			t.Fatalf("popular query rank %d beyond head", q.Rank)
		}
		if q := g.Query(ClassMixed); q.Rank < NumRanks/2 {
			t.Fatalf("mixed query rank %d in head", q.Rank)
		}
	}
}

func TestQueryIDsUnique(t *testing.T) {
	g := NewGenerator(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		q := g.Query(ClassComplex)
		if seen[q.ID] {
			t.Fatalf("duplicate query ID %d", q.ID)
		}
		seen[q.ID] = true
	}
}

func TestCorpusLength(t *testing.T) {
	g := NewGenerator(4)
	c := g.Corpus(77, ClassPopular)
	if len(c) != 77 {
		t.Fatalf("corpus len = %d", len(c))
	}
}

func TestDistinctQueriesAreDistinct(t *testing.T) {
	g := NewGenerator(5)
	qs := g.DistinctQueries(500)
	seen := map[string]bool{}
	for _, q := range qs {
		if seen[q.Keywords] {
			t.Fatalf("duplicate keywords %q", q.Keywords)
		}
		seen[q.Keywords] = true
	}
}

func TestKeywordForRankUnique(t *testing.T) {
	seen := map[string]int{}
	for r := 0; r < NumRanks; r += 97 {
		kw := KeywordForRank(r)
		if prev, dup := seen[kw]; dup {
			t.Fatalf("ranks %d and %d share keyword %q", prev, r, kw)
		}
		seen[kw] = r
	}
}

func TestQueryPathRoundTrip(t *testing.T) {
	q := Query{ID: 7, Class: ClassComplex, Keywords: "computer science department", Terms: 3, Rank: 102}
	got, err := ParsePath(q.Path())
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Fatalf("round trip = %+v, want %+v", got, q)
	}
}

func TestParsePathErrors(t *testing.T) {
	for _, bad := range []string{"/other?q=x", "/search", "/search?c=1", "%zz"} {
		if _, err := ParsePath(bad); err == nil {
			t.Fatalf("ParsePath(%q) accepted", bad)
		}
	}
}

func TestParsePathGeneratedQueries(t *testing.T) {
	g := NewGenerator(11)
	for _, c := range Classes() {
		for i := 0; i < 50; i++ {
			q := g.Query(c)
			got, err := ParsePath(q.Path())
			if err != nil {
				t.Fatalf("ParsePath(%q): %v", q.Path(), err)
			}
			if got != q {
				t.Fatalf("round trip = %+v, want %+v", got, q)
			}
		}
	}
}

func TestStaticPrefixExactSizeAndStable(t *testing.T) {
	spec := DefaultContentSpec("bing-like")
	a, b := spec.StaticPrefix(), spec.StaticPrefix()
	if len(a) != spec.StaticSize {
		t.Fatalf("static size = %d, want %d", len(a), spec.StaticSize)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("static prefix not deterministic")
	}
	for _, marker := range []string{"<!DOCTYPE html>", "Videos", "News", "Shopping", "<style>"} {
		if !bytes.Contains(a, []byte(marker)) {
			t.Fatalf("static prefix lacks %q", marker)
		}
	}
}

func TestStaticPrefixDiffersAcrossServices(t *testing.T) {
	a := DefaultContentSpec("google-like").StaticPrefix()
	b := DefaultContentSpec("bing-like").StaticPrefix()
	if bytes.Equal(a, b) {
		t.Fatal("different services share a static prefix")
	}
}

func TestDynamicBodyDependsOnQuery(t *testing.T) {
	spec := DefaultContentSpec("svc")
	g := NewGenerator(6)
	q1, q2 := g.Query(ClassGranular), g.Query(ClassGranular)
	rng := stats.NewRand(1)
	b1 := spec.DynamicBody(q1, rng)
	b2 := spec.DynamicBody(q2, rng)
	if bytes.Equal(b1, b2) {
		t.Fatal("distinct queries produced identical dynamic bodies")
	}
	if !bytes.Contains(b1, []byte(q1.Keywords)) {
		t.Fatal("dynamic body lacks its keywords")
	}
}

// dynamicBodyRef is the original fmt.Fprintf implementation of
// DynamicBody, kept as a readable reference. The differential test
// below pins the allocation-free production version to it byte for
// byte (including rng call order — both draw from the same stream).
func dynamicBodyRef(s ContentSpec, q Query, rng *rand.Rand) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `<div id="dynmenu">related: %s images, %s news</div>`+"\n", q.Keywords, q.Keywords)
	target := s.DynamicSize(q)
	i := 0
	for b.Len() < target-128 {
		i++
		if rng.Float64() < 0.15 {
			fmt.Fprintf(&b, `<div class="ad">Ad %d — buy %s now! sponsored-link-%06d</div>`+"\n",
				i, q.Keywords, rng.Intn(1e6))
			continue
		}
		fmt.Fprintf(&b, `<div class="res"><a href="http://example-%06d.org/%d">%s — result %d</a>`,
			rng.Intn(1e6), q.ID, q.Keywords, i)
		fmt.Fprintf(&b, `<span class="url">example-%06d.org</span><p>snippet about %s`,
			rng.Intn(1e6), q.Keywords)
		n := 40 + rng.Intn(120)
		for j := 0; j < n; j++ {
			b.WriteByte(byte('a' + (i+j)%26))
		}
		b.WriteString("</p></div>\n")
	}
	fmt.Fprintf(&b, "</div>\n</body>\n</html>\n<!-- qid=%d -->", q.ID)
	return b.Bytes()
}

func TestDynamicBodyMatchesReference(t *testing.T) {
	for _, svc := range []string{"google-like", "bing-like"} {
		spec := DefaultContentSpec(svc)
		g := NewGenerator(11)
		for _, class := range []Class{ClassGranular, ClassComplex, ClassPopular} {
			for k := 0; k < 8; k++ {
				q := g.Query(class)
				got := spec.DynamicBody(q, stats.NewRand(int64(q.ID)))
				want := dynamicBodyRef(spec, q, stats.NewRand(int64(q.ID)))
				if !bytes.Equal(got, want) {
					t.Fatalf("%s %v q=%d: DynamicBody diverges from fmt reference\ngot  %q\nwant %q",
						svc, class, q.ID, got, want)
				}
			}
		}
	}
}

func TestDynamicBodyNearTargetSize(t *testing.T) {
	spec := DefaultContentSpec("svc")
	g := NewGenerator(7)
	rng := stats.NewRand(2)
	for i := 0; i < 20; i++ {
		q := g.Query(ClassComplex)
		body := spec.DynamicBody(q, rng)
		target := spec.DynamicSize(q)
		if len(body) < target-512 || len(body) > target+512 {
			t.Fatalf("body size %d, target %d", len(body), target)
		}
	}
}

func TestDynamicSizeGrowsWithTerms(t *testing.T) {
	spec := DefaultContentSpec("svc")
	small := Query{Terms: 1}
	large := Query{Terms: 10}
	if spec.DynamicSize(large) <= spec.DynamicSize(small) {
		t.Fatal("dynamic size not increasing with terms")
	}
}

func TestCostModelComplexityEffect(t *testing.T) {
	m := CostModel{Base: 50 * time.Millisecond, PerTerm: 20 * time.Millisecond}
	rng := stats.NewRand(3)
	short := m.Sample(Query{Terms: 1, Rank: NumRanks - 1}, 0, rng)
	long := m.Sample(Query{Terms: 10, Rank: NumRanks - 1}, 0, rng)
	if long <= short {
		t.Fatalf("complex query not slower: %v vs %v", long, short)
	}
	if short != 70*time.Millisecond {
		t.Fatalf("deterministic (CV=0) sample = %v, want 70ms", short)
	}
}

func TestCostModelPopularDiscount(t *testing.T) {
	m := CostModel{Base: 100 * time.Millisecond, PopularDiscount: 0.5}
	rng := stats.NewRand(4)
	popular := m.Sample(Query{Terms: 0, Rank: 0}, 0, rng)
	obscure := m.Sample(Query{Terms: 0, Rank: NumRanks - 1}, 0, rng)
	if popular != 50*time.Millisecond || obscure != 100*time.Millisecond {
		t.Fatalf("discount wrong: popular=%v obscure=%v", popular, obscure)
	}
}

func TestCostModelLoadEffect(t *testing.T) {
	m := CostModel{Base: 100 * time.Millisecond, LoadAmplitude: 0.5}
	rng := stats.NewRand(5)
	idle := m.Sample(Query{Rank: NumRanks - 1}, 0, rng)
	busy := m.Sample(Query{Rank: NumRanks - 1}, 1, rng)
	if busy <= idle {
		t.Fatalf("load had no effect: %v vs %v", busy, idle)
	}
	if busy != 150*time.Millisecond {
		t.Fatalf("busy = %v, want 150ms", busy)
	}
}

func TestCostModelVariability(t *testing.T) {
	m := CostModel{Base: 250 * time.Millisecond, CV: 0.4}
	rng := stats.NewRand(6)
	var w stats.Welford
	for i := 0; i < 20000; i++ {
		w.Add(float64(m.Sample(Query{Rank: NumRanks - 1}, 0, rng)) / float64(time.Millisecond))
	}
	if w.Mean() < 230 || w.Mean() > 270 {
		t.Fatalf("mean = %v ms, want ~250", w.Mean())
	}
	cv := w.StdDev() / w.Mean()
	if cv < 0.3 || cv > 0.5 {
		t.Fatalf("cv = %v, want ~0.4", cv)
	}
}

func TestCostModelFloor(t *testing.T) {
	m := CostModel{Base: 0, PerTerm: 0}
	rng := stats.NewRand(7)
	if got := m.Sample(Query{}, -10, rng); got < time.Millisecond {
		t.Fatalf("sample below floor: %v", got)
	}
}

func TestSharedStaticPrefixAcrossQueries(t *testing.T) {
	// The property the analyzer relies on: all responses from one
	// service share the static prefix, and the first difference occurs
	// at exactly StaticSize.
	spec := DefaultContentSpec("svc")
	g := NewGenerator(8)
	rng := stats.NewRand(9)
	static := spec.StaticPrefix()
	q1, q2 := g.Query(ClassPopular), g.Query(ClassComplex)
	full1 := append(append([]byte{}, static...), spec.DynamicBody(q1, rng)...)
	full2 := append(append([]byte{}, static...), spec.DynamicBody(q2, rng)...)
	lcp := 0
	for lcp < len(full1) && lcp < len(full2) && full1[lcp] == full2[lcp] {
		lcp++
	}
	if lcp < spec.StaticSize {
		t.Fatalf("LCP %d < static size %d", lcp, spec.StaticSize)
	}
	// The dynamic parts must diverge quickly (within a menu line).
	if lcp > spec.StaticSize+64 {
		t.Fatalf("LCP %d extends deep into dynamic content", lcp)
	}
}

func TestSuggestions(t *testing.T) {
	s := Suggestions(100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[string]bool{}
	for _, kw := range s {
		if seen[kw] {
			t.Fatalf("duplicate suggestion %q", kw)
		}
		seen[kw] = true
	}
	if got := Suggestions(-1); len(got) != 0 {
		t.Fatal("negative n")
	}
	if got := Suggestions(NumRanks + 5); len(got) != NumRanks {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestUnsuggestedKeywordDistinct(t *testing.T) {
	sugg := map[string]bool{}
	for _, kw := range Suggestions(1000) {
		sugg[kw] = true
	}
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		kw := UnsuggestedKeyword(i)
		if sugg[kw] {
			t.Fatalf("unsuggested keyword %q collides with suggestions", kw)
		}
		if seen[kw] {
			t.Fatalf("duplicate unsuggested %q", kw)
		}
		seen[kw] = true
	}
}

// FuzzParsePath hardens the wire-path parser: arbitrary paths must
// error or parse, never panic.
func FuzzParsePath(f *testing.F) {
	f.Add("/search?q=computer+science&c=1&r=10&id=3")
	f.Add("/search?q=")
	f.Add("/other")
	f.Add("%zz")
	f.Add("/search?q=a&r=-1&c=999")
	f.Fuzz(func(t *testing.T, path string) {
		q, err := ParsePath(path)
		if err == nil && q.Keywords == "" {
			t.Fatal("parsed query without keywords")
		}
	})
}
