package fesplit

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"fesplit/internal/obs/critpath"
)

// PhaseBlame is one row of the critical-path profile: how much of a
// service's end-to-end query time one exclusive phase is to blame for.
// All durations are milliseconds; SharePct is the phase's share of the
// service's total attributed time.
type PhaseBlame struct {
	Service  string
	Phase    string
	Count    uint64
	TotalMS  float64
	MeanMS   float64
	P50MS    float64
	P90MS    float64
	P99MS    float64
	SharePct float64
}

// critPhaseFamily is the sketch family the critical-path profiler
// folds attributions into (see internal/analysis.CritObserver).
const critPhaseFamily = "critpath_phase_seconds"

// phaseRank orders phases causally (the order they occur on the
// critical path) for display; unknown labels sort last, by name.
func phaseRank(name string) int {
	for i := 0; i < critpath.NumPhases; i++ {
		if critpath.Phase(i).String() == name {
			return i
		}
	}
	return critpath.NumPhases
}

// ProfileFromMetrics extracts the per-(service, phase) blame table from
// a registry's critpath_phase_seconds sketches. Rows are sorted by
// service, then descending total blame (ties broken by causal phase
// order), so the table reads "where did this service's time go" top
// down. Registries without critical-path data return no rows.
func ProfileFromMetrics(reg *MetricsRegistry) []PhaseBlame {
	var rows []PhaseBlame
	totals := map[string]float64{}
	for _, f := range reg.Families() {
		if f.Name != critPhaseFamily {
			continue
		}
		for _, s := range f.Series() {
			if s.Sketch == nil || s.Sketch.Count() == 0 || len(s.LabelValues) < 2 {
				continue
			}
			svc, phase := s.LabelValues[0], s.LabelValues[1]
			sum := s.Sketch.Sum()
			rows = append(rows, PhaseBlame{
				Service: svc,
				Phase:   phase,
				Count:   s.Sketch.Count(),
				TotalMS: sum * 1e3,
				MeanMS:  s.Sketch.Mean() * 1e3,
				P50MS:   s.Sketch.Quantile(0.5) * 1e3,
				P90MS:   s.Sketch.Quantile(0.9) * 1e3,
				P99MS:   s.Sketch.Quantile(0.99) * 1e3,
			})
			totals[svc] += sum
		}
	}
	for i := range rows {
		if t := totals[rows[i].Service]; t > 0 {
			rows[i].SharePct = rows[i].TotalMS / (t * 1e3) * 100
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.TotalMS != b.TotalMS {
			return a.TotalMS > b.TotalMS
		}
		return phaseRank(a.Phase) < phaseRank(b.Phase)
	})
	return rows
}

// WriteProfileCSV writes the blame table as CSV (one row per
// service×phase, durations in milliseconds).
func WriteProfileCSV(w io.Writer, rows []PhaseBlame) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"service", "phase", "count",
		"total_ms", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "share_pct",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Service, r.Phase, strconv.FormatUint(r.Count, 10),
			f(r.TotalMS), f(r.MeanMS), f(r.P50MS), f(r.P90MS), f(r.P99MS),
			strconv.FormatFloat(r.SharePct, 'f', 2, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteProfileTable renders the top-N blame rows per service as an
// aligned text table (the `fesplit profile` stderr summary). topN ≤ 0
// prints every phase.
func WriteProfileTable(w io.Writer, rows []PhaseBlame, topN int) error {
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "no critical-path data (run an observed study first)")
		return err
	}
	service, printed := "", 0
	for _, r := range rows {
		if r.Service != service {
			service, printed = r.Service, 0
			if _, err := fmt.Fprintf(w, "%s — critical-path blame (share of attributed time)\n", service); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "  %-18s %8s %9s %9s %9s %9s %7s\n",
				"phase", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms", "share"); err != nil {
				return err
			}
		}
		if topN > 0 && printed >= topN {
			continue
		}
		printed++
		if _, err := fmt.Fprintf(w, "  %-18s %8d %9.3f %9.3f %9.3f %9.3f %6.2f%%\n",
			r.Phase, r.Count, r.MeanMS, r.P50MS, r.P90MS, r.P99MS, r.SharePct); err != nil {
			return err
		}
	}
	return nil
}
