package fesplit

import (
	"math"
	"strings"
	"testing"
	"time"

	"fesplit/internal/analysis"
	"fesplit/internal/obs/critpath"
)

// feedCritRegistry builds a registry carrying synthetic critical-path
// attributions for one service, with slow scaling the BE-processing
// phase (the injected-regression shape the diff gate must catch).
func feedCritRegistry(t *testing.T, service string, slow float64) *MetricsRegistry {
	t.Helper()
	reg := NewMetricsRegistry()
	co := analysis.NewCritObserver(reg, service)
	ms := func(n float64) time.Duration { return time.Duration(n * float64(time.Millisecond)) }
	for i := 0; i < 200; i++ {
		var a critpath.Attribution
		a.Phases[critpath.PhaseHandshake] = ms(40)
		a.Phases[critpath.PhaseStaticDelivery] = ms(10)
		a.Phases[critpath.PhaseBERTT] = ms(20)
		a.Phases[critpath.PhaseBEProc] = ms((50 + float64(i%7)) * slow)
		a.Phases[critpath.PhaseDynamicDelivery] = ms(15)
		a.Total = a.Sum()
		a.Tdelta = ms(70)
		a.Tdynamic = ms(100)
		a.FetchEstimate = ms(80)
		co.Observe(a, ms(82))
	}
	return reg
}

func TestProfileFromMetrics(t *testing.T) {
	reg := feedCritRegistry(t, "bing-like", 1)
	rows := ProfileFromMetrics(reg)
	if len(rows) != critpath.NumPhases {
		t.Fatalf("got %d rows, want %d (every phase observed, zeros included)",
			len(rows), critpath.NumPhases)
	}
	if rows[0].Phase != "be-proc" {
		t.Fatalf("top blame = %q, want be-proc", rows[0].Phase)
	}
	var share float64
	for _, r := range rows {
		if r.Service != "bing-like" {
			t.Fatalf("unexpected service %q", r.Service)
		}
		if r.Count != 200 {
			t.Fatalf("phase %s count = %d, want 200", r.Phase, r.Count)
		}
		share += r.SharePct
	}
	if math.Abs(share-100) > 1e-6 {
		t.Fatalf("shares sum to %.6f, want 100", share)
	}

	var csvb, tab strings.Builder
	if err := WriteProfileCSV(&csvb, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvb.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(rows)+1)
	}
	if !strings.HasPrefix(lines[0], "service,phase,count,total_ms") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if err := WriteProfileTable(&tab, rows, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "be-proc") {
		t.Fatalf("table missing top phase:\n%s", tab.String())
	}
	// Top-3 cut: header + column line + 3 phase rows.
	if got := strings.Count(tab.String(), "\n"); got != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", got, tab.String())
	}
}

func TestDiffMetricsSameRunClean(t *testing.T) {
	a := feedCritRegistry(t, "bing-like", 1)
	b := feedCritRegistry(t, "bing-like", 1)
	rep := DiffMetrics(a, b, DiffOptions{})
	if rep.Failed() || len(rep.Rows) != 0 {
		t.Fatalf("identical runs produced breaches: %+v", rep.Rows)
	}
	if rep.SeriesCompared == 0 {
		t.Fatal("no series compared")
	}
}

func TestDiffMetricsCatchesBESlowdown(t *testing.T) {
	old := feedCritRegistry(t, "bing-like", 1)
	slow := feedCritRegistry(t, "bing-like", 1.5)
	rep := DiffMetrics(old, slow, DiffOptions{})
	if !rep.Failed() {
		t.Fatal("1.5× BE slowdown not flagged as regression")
	}
	found := false
	for _, row := range rep.Rows {
		if row.Family == "critpath_phase_seconds" && strings.Contains(row.Labels, "phase=be-proc") {
			if !row.Regression {
				t.Fatalf("be-proc breach not marked regression: %+v", row)
			}
			found = true
		}
		if strings.Contains(row.Labels, "phase=handshake") {
			t.Fatalf("untouched phase flagged: %+v", row)
		}
	}
	if !found {
		t.Fatalf("regression rows do not name be-proc: %+v", rep.Rows)
	}
	var b strings.Builder
	if err := rep.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "be-proc") {
		t.Fatalf("verdict table missing regression naming be-proc:\n%s", out)
	}
}

// TestDiffMetricsJSONLRoundTrip pins the CLI path: a registry written
// to metrics JSONL and re-read diffs clean against itself.
func TestDiffMetricsJSONLRoundTrip(t *testing.T) {
	reg := feedCritRegistry(t, "google-like", 1)
	var b strings.Builder
	if err := WriteMetricsJSONL(&b, reg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMetricsJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	rep := DiffMetrics(reg, back, DiffOptions{})
	if rep.Failed() || len(rep.Rows) != 0 {
		t.Fatalf("JSONL round trip changed quantiles: %+v", rep.Rows)
	}
	if len(rep.OnlyOld) != 0 || len(rep.OnlyNew) != 0 {
		t.Fatalf("JSONL round trip lost series: old=%v new=%v", rep.OnlyOld, rep.OnlyNew)
	}
}
