package fesplit

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fesplit/internal/baseline"
	"fesplit/internal/stats"
)

// Report bundles every regenerated figure of the study, plus the
// extension experiments (term-count correlation, interactive search,
// wireless what-if).
type Report struct {
	Config      StudyConfig
	Fig3        *Fig3Data
	Fig4        []Fig4Row
	Fig5        []*Fig5Data
	Fig6        []*Fig6Data
	Fig7        []*Fig7Data
	Fig8        []*Fig8Data
	Fig9        []*Fig9Data
	Caching     *CachingData
	TermEffect  []*TermEffectData
	Interactive *InteractiveData
	Wireless    *WirelessData
	ModelCheck  *ModelValidationData
	// Load-aware back-end queueing scenarios (docs/QUEUEING.md).
	Overload *OverloadData
	Hotspot  *HotspotData
	Failover *FailoverData
	Capacity *CapacityData
}

// WriteReport runs the whole study and renders it as text.
func (s *Study) WriteReport(w io.Writer) error {
	rep, err := s.RunAll()
	if err != nil {
		return err
	}
	return rep.WriteText(w)
}

// WriteText renders the report in the order of the paper's figures.
func (r *Report) WriteText(w io.Writer) error {
	pf := func(format string, args ...interface{}) { fmt.Fprintf(w, format, args...) }
	hr := func(title string) { pf("\n===== %s =====\n", title) }

	pf("fesplit reproduction study (seed=%d, nodes=%d)\n", r.Config.Seed, r.Config.Nodes)

	if r.Fig3 != nil {
		hr("Figure 3 — keyword-class effect on Tstatic / Tdynamic (moving medians, ms)")
		pf("%-10s %14s %14s %14s %14s\n", "class",
			"Tstatic med", "Tstatic IQR", "Tdyn med", "Tdyn IQR")
		for _, c := range r.Fig3.Classes {
			ss := stats.Summarize(r.Fig3.Tstatic[c])
			ds := stats.Summarize(r.Fig3.Tdynamic[c])
			pf("%-10s %14.1f %14.1f %14.1f %14.1f\n",
				c, ss.Median, ss.IQR(), ds.Median, ds.IQR())
		}
		pf("observation: Tdynamic varies strongly across classes; Tstatic does not.\n")
	}

	if r.Fig4 != nil {
		hr("Figure 4 — packet-event timelines per client RTT (ms since first SYN)")
		for _, row := range r.Fig4 {
			pf("RTT %7.1f ms | ", row.RTTMS)
			var marks []string
			for _, ev := range row.Events {
				if ev.Payload == 0 && !strings.Contains(ev.Flags, "SYN") &&
					!strings.Contains(ev.Flags, "FIN") {
					continue // skip pure ACK noise in the condensed view
				}
				dir := "↑"
				if !ev.Send {
					dir = "↓"
				}
				marks = append(marks, fmt.Sprintf("%s%.0f", dir, ev.AtMS))
			}
			const maxMarks = 24
			if len(marks) > maxMarks {
				marks = append(marks[:maxMarks], "…")
			}
			pf("%s\n", strings.Join(marks, " "))
		}
		pf("observation: the static and dynamic receive clusters merge as RTT grows.\n")
	}

	if r.Fig5 != nil {
		hr("Figure 5 — Tstatic / Tdynamic / Tdelta vs RTT, fixed FE")
		for _, f := range r.Fig5 {
			pf("\n[%s] fixed FE = %s\n", f.Service, f.FixedFE)
			pf("%-10s %10s %10s %10s %10s\n", "RTT(ms)", "N", "Tstat", "Tdyn", "Tdelta")
			for _, n := range sampleNodes(f.Nodes, 12) {
				pf("%-10.1f %10d %10.1f %10.1f %10.1f\n",
					ms(n.RTT), n.N, ms(n.MedStatic), ms(n.MedDynamic), ms(n.MedDelta))
			}
			if f.HasThresh {
				pf("Tdelta→0 threshold: ~%.0f ms RTT\n", f.ThresholdMS)
			}
			pf("inference bounds: Tdelta %.1f ≤ Tfetch %.1f ≤ Tdynamic %.1f ms — ok=%v\n",
				f.BoundLoMS, f.TruthMS, f.BoundHiMS, f.BoundsOK)
			var rtts, deltas []float64
			for _, n := range f.Nodes {
				rtts = append(rtts, ms(n.RTT))
				deltas = append(deltas, ms(n.MedDelta))
			}
			pf("%s", stats.Scatter(rtts, deltas, 56, 9, "RTT (ms)", "Tdelta (ms)"))
		}
	}

	if r.Fig6 != nil {
		hr("Figure 6 — RTT to default FE (CDF)")
		series := map[string]*stats.ECDF{}
		var xmax float64
		for _, f := range r.Fig6 {
			series[f.Service] = stats.NewECDF(f.RTTsMS)
			if m := stats.Max(f.RTTsMS); m > xmax {
				xmax = m
			}
			pf("%-14s nodes under 20 ms: %.0f%%\n", f.Service, 100*f.FracUnder20ms)
		}
		if xmax > 100 {
			xmax = 100
		}
		pf("%s", stats.Render(series, xmax, 10, 60))
	}

	if r.Fig7 != nil {
		hr("Figure 7 — Tstatic / Tdynamic with default FEs")
		pf("%-14s %12s %12s %12s %12s\n", "service",
			"Tstat med", "Tstat IQR", "Tdyn med", "Tdyn IQR")
		for _, f := range r.Fig7 {
			pf("%-14s %12.1f %12.1f %12.1f %12.1f\n",
				f.Service, f.MedStaticMS, f.IQRStaticMS, f.MedDynamicMS, f.IQRDynMS)
		}
		pf("observation: the dense CDN is closer yet slower and more variable.\n")
	}

	if r.Fig8 != nil {
		hr("Figure 8 — overall delay per node (box plots, ms)")
		for _, f := range r.Fig8 {
			pf("\n[%s] median-of-node-medians %.1f ms, median node IQR %.1f ms\n",
				f.Service, f.MedOverallMS, f.SpreadMS)
			for i, b := range f.Boxes {
				if i >= 10 {
					pf("  … %d more nodes\n", len(f.Boxes)-10)
					break
				}
				pf("  %-10s min %7.1f  q1 %7.1f  med %7.1f  q3 %7.1f  max %7.1f\n",
					f.Nodes[i], b.Min, b.Q1, b.Median, b.Q3, b.Max)
			}
		}
	}

	if r.Fig9 != nil {
		hr("Figure 9 — factoring the FE-BE fetch time")
		for _, f := range r.Fig9 {
			pf("[%s → %s] Tdynamic = %.4f·miles + %.1f ms   (R²=%.2f, %d FEs)\n",
				f.Service, f.BE, f.Result.SlopeMSPerMile, f.Result.ProcTimeMS,
				f.Result.Fit.R2, len(f.Result.Points))
			if f.Result.ProcCI.Width() > 0 {
				pf("    95%% CI: slope [%.4f, %.4f] ms/mile, intercept [%.1f, %.1f] ms\n",
					f.Result.SlopeCI.Lo, f.Result.SlopeCI.Hi,
					f.Result.ProcCI.Lo, f.Result.ProcCI.Hi)
			}
			var miles, tdyn []float64
			for _, p := range f.Result.Points {
				miles = append(miles, p.Miles)
				tdyn = append(tdyn, p.TdynamicMS)
			}
			pf("%s", stats.Scatter(miles, tdyn, 56, 8, "FE-BE distance (miles)", "Tdynamic (ms)"))
		}
		pf("intercept ≈ back-end processing time; slope ≈ network delay per mile.\n")
	}

	if r.Caching != nil {
		hr("Section 3 — do FE servers cache search results?")
		d, c := r.Caching.Deployed, r.Caching.Control
		pf("deployed service:  KS=%.2f  same=%.0fms distinct=%.0fms  caching detected: %v\n",
			d.KS, d.MedianSameMS, d.MedianDistinctMS, d.CachingDetected)
		pf("positive control:  KS=%.2f  same=%.0fms distinct=%.0fms  caching detected: %v\n",
			c.KS, c.MedianSameMS, c.MedianDistinctMS, c.CachingDetected)
	}

	if r.TermEffect != nil {
		hr("Extension — fetch time vs query term count (reviewer question)")
		for _, d := range r.TermEffect {
			pf("[%s] Tdynamic ≈ %.2f ms/term (R²=%.2f)\n", d.Service, d.SlopeMSPerTerm, d.R2)
			for _, p := range d.Points {
				pf("  %d terms: Tdyn %.1f ms (n=%d)\n", p.Terms, p.MedTdynMS, p.SampleCount)
			}
		}
	}

	if r.Interactive != nil {
		hr("Section 6 — interactive search-as-you-type")
		d := r.Interactive
		pf("typing %q: %d keystrokes, %d TCP connections (one per letter)\n",
			d.Keywords, d.Keystrokes, d.Connections)
		pf("per-keystroke Tdynamic (ms):")
		for _, v := range d.PerKeystrokeTdynMS {
			pf(" %.0f", v)
		}
		pf("\nevery keystroke session fits the basic model: %v\n", d.ModelHolds)
	}

	if r.ModelCheck != nil {
		hr("Section 2 — model validation (simulation ground truth)")
		m := r.ModelCheck
		pf("[%s] analytic model vs %d measured nodes: median |Tdynamic err| %.1f ms, "+
			"median |Tdelta err| %.1f ms, %.0f%% of nodes within 10 ms\n",
			m.Service, m.Nodes, m.MedAbsErrTdynMS, m.MedAbsErrDeltaMS, 100*m.Within10ms)
	}

	if r.Wireless != nil {
		hr("Discussion — wireless last mile")
		d := r.Wireless
		pf("[%s] median overall delay: campus %.1f ms, wireless %.1f ms\n",
			d.Service, d.CampusOverallMS, d.WirelessOverallMS)
		pf("client-side retransmissions: campus %d, wireless %d\n",
			d.CampusRetrans, d.WirelessRetrans)
		pf("with a lossy last hop, close FE placement matters far more.\n")
	}

	writeBuckets := func(buckets []QueueBucket) {
		pf("%-8s %8s %6s %9s %9s %10s %10s %7s %6s\n", "start_s",
			"offered", "ok", "degraded", "rejected", "p50_ms", "p99_ms", "depth", "util")
		for _, b := range buckets {
			pf("%-8.0f %8d %6d %9d %9d %10.1f %10.1f %7d %6.2f\n",
				b.StartS, b.Offered, b.OK, b.Degraded, b.Rejected,
				b.P50Ms, b.P99Ms, b.QueueDepth, b.Utilization)
		}
	}

	if r.Overload != nil {
		hr("Queueing — traffic-spike overload")
		d := r.Overload
		pf("[%s] %d replicas, queue cap %d, 4× arrival surge in [%.0f, %.0f) s\n",
			d.Service, d.Replicas, d.QueueCap, d.SurgeStartS, d.SurgeEndS)
		writeBuckets(d.Buckets)
		pf("BE rejections %d, FE retries %d, degraded responses %d, max queue depth %d\n",
			d.BERejected, d.FERetries, d.Degraded, d.MaxQueueDepth)
		pf("observation: the cap bounds queue depth; excess load is shed as 503s.\n")
	}

	if r.Hotspot != nil {
		hr("Queueing — hotspot keyword")
		d := r.Hotspot
		pf("[%s] %d replicas, %d-term hot query in [%.0f, %.0f) s at unchanged rate\n",
			d.Service, d.Replicas, d.HotTerms, d.SurgeStartS, d.SurgeEndS)
		writeBuckets(d.Buckets)
		pf("max queue depth %d\n", d.MaxQueueDepth)
		pf("observation: per-query work, not arrival rate, saturates the cluster.\n")
	}

	if r.Failover != nil {
		hr("Queueing — FE-fleet failover to distant BE")
		d := r.Failover
		pf("[%s] at %.0f s every FE fails over (e.g. %s → %s)\n",
			d.Service, d.FailAtS, d.FromBE, d.ToBE)
		writeBuckets(d.Buckets)
		pf("median Tdynamic: pre %.1f ms → post %.1f ms\n", d.PreP50Ms, d.PostP50Ms)
		pf("observation: distance, not load, explains the step — queues stay flat.\n")
	}

	if r.Capacity != nil {
		hr("Queueing — capacity-planning sweep")
		d := r.Capacity
		pf("[%s] %.1f queries/s offered; SLO: p99 Tdynamic ≤ %.1f ms (2× uncontended)\n",
			d.Service, d.OfferedQPS, d.SLOMs)
		pf("%-9s %8s %6s %6s %7s %10s %10s %5s\n", "replicas",
			"offered", "ok", "util", "depth", "p50_ms", "p99_ms", "slo")
		for _, p := range d.Points {
			pf("%-9d %8d %6d %6.2f %7d %10.1f %10.1f %5v\n",
				p.Replicas, p.Offered, p.OK, p.Utilization, p.MaxQueueDepth,
				p.P50Ms, p.P99Ms, p.MeetsSLO)
		}
		pf("smallest cluster meeting the SLO: %d replicas\n", d.MinReplicas)
	}

	return nil
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// sampleNodes picks ~k evenly spaced nodes across the RTT range for
// compact tables.
func sampleNodes(nodes []NodeSummary, k int) []NodeSummary {
	if len(nodes) <= k {
		return nodes
	}
	out := make([]NodeSummary, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, nodes[i*(len(nodes)-1)/(k-1)])
	}
	return out
}

// WritePlacementSweep renders the placement-ablation table.
func WritePlacementSweep(w io.Writer, pts []PlacementPoint) {
	fmt.Fprintf(w, "%-10s %14s %14s %12s %12s %12s\n",
		"fraction", "client-FE mi", "FE-BE mi", "overall ms", "Tdyn ms", "fetch ms")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10.2f %14.0f %14.0f %12.1f %12.1f %12.1f\n",
			p.Fraction, p.ClientFEMiles, p.FEBEMiles,
			ms(p.Overall), ms(p.MedTdynamic), ms(p.MedFetch))
	}
}

// RunDirectBaseline runs the no-FE comparator and returns per-node
// results sorted by RTT.
func RunDirectBaseline(cfg DeploymentConfig, nodes int, fleetSeed int64,
	repeats int, interval time.Duration, querySeed int64) ([]baseline.DirectResult, error) {
	res, err := baseline.RunDirect(cfg, nodes, fleetSeed, repeats, interval, querySeed)
	if err != nil {
		return nil, err
	}
	sort.Slice(res, func(i, j int) bool { return res[i].RTT < res[j].RTT })
	return res, nil
}

// DirectResult is one node's outcome in the no-FE baseline.
type DirectResult = baseline.DirectResult
