package fesplit

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fesplit/internal/obs"
	"fesplit/internal/obs/critpath"
	"fesplit/internal/viz"
)

// WriteHTML renders the report as one self-contained HTML page with
// inline SVG figures: the RTT CDFs (Figure 6), RTT-vs-parameter
// scatters (Figures 5 and 7), per-node overall-delay box plots
// (Figure 8), the fetch-time factoring regression (Figure 9), and —
// when an observability registry and tail-sampled exemplars are
// supplied — the metric quantile tables and exemplar span timelines.
// Every section is optional: nil report fields, a nil registry and an
// empty exemplar list are simply skipped. Output is deterministic:
// same inputs render byte-identical pages.
func (r *Report) WriteHTML(w io.Writer, reg *MetricsRegistry, exemplars []Exemplar) error {
	bw := &htmlWriter{w: w}
	bw.printf("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	bw.printf("<title>fesplit report (seed=%d)</title>\n", r.Config.Seed)
	bw.printf(`<style>
body { font-family: sans-serif; margin: 2em auto; max-width: 72em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 2em; border-bottom: 1px solid #ccc; }
p.note { color: #555; font-size: 0.92em; }
table { border-collapse: collapse; font-size: 0.9em; margin: 0.6em 0; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #f2f2f2; } td.l, th.l { text-align: left; }
.violation { color: #b00; font-weight: bold; }
figure { margin: 0.8em 0; }
</style>
</head>
<body>
`)
	bw.printf("<h1>fesplit reproduction study</h1>\n")
	bw.printf("<p class=\"note\">seed %d, %d vantage nodes — figures regenerated from the deterministic simulation.</p>\n",
		r.Config.Seed, r.Config.Nodes)

	r.htmlFig6(bw)
	r.htmlFig5(bw)
	r.htmlFig7(bw)
	r.htmlFig8(bw)
	r.htmlFig9(bw)
	htmlCritPath(bw, reg, exemplars)
	htmlMetrics(bw, reg)
	htmlRuntime(bw, reg)
	htmlExemplars(bw, exemplars)

	bw.printf("</body>\n</html>\n")
	return bw.err
}

// htmlWriter latches the first write error (same pattern as the obs
// exporters).
type htmlWriter struct {
	w   io.Writer
	err error
}

func (h *htmlWriter) printf(format string, args ...interface{}) {
	if h.err != nil {
		return
	}
	_, h.err = fmt.Fprintf(h.w, format, args...)
}

func (r *Report) htmlFig6(bw *htmlWriter) {
	if len(r.Fig6) == 0 {
		return
	}
	bw.printf("<h2>Figure 6 — RTT to default FE (CDF)</h2>\n")
	var series []viz.Series
	for _, f := range r.Fig6 {
		xs := append([]float64(nil), f.RTTsMS...)
		sort.Float64s(xs)
		s := viz.Series{Name: f.Service}
		for i, x := range xs {
			s.X = append(s.X, x)
			s.Y = append(s.Y, float64(i+1)/float64(len(xs)))
		}
		series = append(series, s)
		bw.printf("<p class=\"note\">%s: %.0f%% of nodes under 20 ms</p>\n",
			viz.Esc(f.Service), 100*f.FracUnder20ms)
	}
	bw.printf("<figure>%s</figure>\n", viz.Plot(series, viz.Options{
		Title: "RTT to default FE", XLabel: "RTT (ms)", YLabel: "CDF", Step: true,
	}))
}

func (r *Report) htmlFig5(bw *htmlWriter) {
	if len(r.Fig5) == 0 {
		return
	}
	bw.printf("<h2>Figure 5 — T<sub>static</sub> / T<sub>dynamic</sub> / T<sub>delta</sub> vs RTT (fixed FE)</h2>\n")
	for _, f := range r.Fig5 {
		series := nodeParamSeries(f.Nodes)
		bw.printf("<figure>%s</figure>\n", viz.Plot(series, viz.Options{
			Title:  fmt.Sprintf("%s — fixed FE %s", f.Service, f.FixedFE),
			XLabel: "node median RTT (ms)", YLabel: "ms",
		}))
		bw.printf("<p class=\"note\">inference bounds: Tdelta %.1f ≤ Tfetch %.1f ≤ Tdynamic %.1f ms (ok=%v)",
			f.BoundLoMS, f.TruthMS, f.BoundHiMS, f.BoundsOK)
		if f.HasThresh {
			bw.printf("; Tdelta→0 threshold ≈ %.0f ms RTT", f.ThresholdMS)
		}
		bw.printf("</p>\n")
	}
}

func (r *Report) htmlFig7(bw *htmlWriter) {
	if len(r.Fig7) == 0 {
		return
	}
	bw.printf("<h2>Figure 7 — T<sub>static</sub> / T<sub>dynamic</sub> with default FEs</h2>\n")
	for _, f := range r.Fig7 {
		series := nodeParamSeries(f.Nodes)
		bw.printf("<figure>%s</figure>\n", viz.Plot(series, viz.Options{
			Title:  fmt.Sprintf("%s — default FEs", f.Service),
			XLabel: "node median RTT (ms)", YLabel: "ms",
		}))
		bw.printf("<p class=\"note\">%s: Tstatic med %.1f (IQR %.1f) ms, Tdynamic med %.1f (IQR %.1f) ms</p>\n",
			viz.Esc(f.Service), f.MedStaticMS, f.IQRStaticMS, f.MedDynamicMS, f.IQRDynMS)
	}
}

// nodeParamSeries builds the shared RTT-vs-parameter scatter series.
func nodeParamSeries(nodes []NodeSummary) []viz.Series {
	st := viz.Series{Name: "Tstatic"}
	dy := viz.Series{Name: "Tdynamic"}
	de := viz.Series{Name: "Tdelta"}
	for _, n := range nodes {
		rtt := msf(n.RTT)
		st.X = append(st.X, rtt)
		st.Y = append(st.Y, msf(n.MedStatic))
		dy.X = append(dy.X, rtt)
		dy.Y = append(dy.Y, msf(n.MedDynamic))
		de.X = append(de.X, rtt)
		de.Y = append(de.Y, msf(n.MedDelta))
	}
	return []viz.Series{st, dy, de}
}

func (r *Report) htmlFig8(bw *htmlWriter) {
	if len(r.Fig8) == 0 {
		return
	}
	bw.printf("<h2>Figure 8 — overall delay per node (box plots)</h2>\n")
	const maxBoxes = 24
	for _, f := range r.Fig8 {
		var boxes []viz.Box
		for i, b := range f.Boxes {
			if i >= maxBoxes {
				break
			}
			boxes = append(boxes, viz.Box{
				Label: f.Nodes[i],
				Min:   b.WhiskerLow, Q1: b.Q1, Median: b.Median, Q3: b.Q3, Max: b.WhiskerHigh,
			})
		}
		bw.printf("<figure>%s</figure>\n", viz.BoxPlot(boxes, viz.Options{
			Title:  fmt.Sprintf("%s — overall delay (first %d nodes by RTT)", f.Service, len(boxes)),
			YLabel: "ms", Width: 900,
		}))
		bw.printf("<p class=\"note\">%s: median of node medians %.1f ms, median node IQR %.1f ms</p>\n",
			viz.Esc(f.Service), f.MedOverallMS, f.SpreadMS)
	}
}

func (r *Report) htmlFig9(bw *htmlWriter) {
	if len(r.Fig9) == 0 {
		return
	}
	bw.printf("<h2>Figure 9 — factoring the FE-BE fetch time</h2>\n")
	for _, f := range r.Fig9 {
		pts := viz.Series{Name: "FE sites"}
		var xmin, xmax float64
		for i, p := range f.Result.Points {
			pts.X = append(pts.X, p.Miles)
			pts.Y = append(pts.Y, p.TdynamicMS)
			if i == 0 || p.Miles < xmin {
				xmin = p.Miles
			}
			if p.Miles > xmax {
				xmax = p.Miles
			}
		}
		fit := viz.Series{
			Name: "fit",
			X:    []float64{xmin, xmax},
			Y: []float64{
				f.Result.ProcTimeMS + f.Result.SlopeMSPerMile*xmin,
				f.Result.ProcTimeMS + f.Result.SlopeMSPerMile*xmax,
			},
		}
		// Markers for the measured sites, a line for the regression:
		// render the line series first so points draw on top.
		bw.printf("<figure>%s</figure>\n", viz.Plot([]viz.Series{pts, fit}, viz.Options{
			Title:  fmt.Sprintf("%s → %s", f.Service, f.BE),
			XLabel: "FE-BE distance (miles)", YLabel: "Tdynamic (ms)", Lines: false,
		}))
		bw.printf("<p class=\"note\">%s → %s: Tdynamic = %.4f·miles + %.1f ms (R²=%.2f); intercept ≈ back-end processing time.</p>\n",
			viz.Esc(f.Service), viz.Esc(f.BE), f.Result.SlopeMSPerMile, f.Result.ProcTimeMS, f.Result.Fit.R2)
	}
}

// htmlMetrics renders the registry's quantile sketches, counters and
// the fast-forward engine's gauge trio.
func htmlMetrics(bw *htmlWriter, reg *MetricsRegistry) {
	if reg == nil {
		return
	}
	htmlFastPath(bw, reg)
	fams := reg.Families()
	var sketches, counters []*obs.Family
	for _, f := range fams {
		switch f.Kind {
		case obs.KindSketch:
			sketches = append(sketches, f)
		case obs.KindCounter:
			counters = append(counters, f)
		}
	}
	if len(sketches) > 0 {
		bw.printf("<h2>Metric quantiles (DDSketch, α=%s)</h2>\n", trimFloat(sketches[0].Alpha()))
		bw.printf("<table>\n<tr><th class=\"l\">metric</th><th class=\"l\">labels</th><th>count</th><th>p50</th><th>p90</th><th>p95</th><th>p99</th></tr>\n")
		for _, f := range sketches {
			for _, s := range f.Series() {
				sk := s.Sketch
				if sk == nil || sk.Count() == 0 {
					continue
				}
				bw.printf("<tr><td class=\"l\">%s</td><td class=\"l\">%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
					viz.Esc(f.Name), viz.Esc(labelSummary(f.LabelNames(), s.LabelValues)),
					sk.Count(),
					trimFloat(sk.Quantile(0.5)), trimFloat(sk.Quantile(0.9)),
					trimFloat(sk.Quantile(0.95)), trimFloat(sk.Quantile(0.99)))
			}
		}
		bw.printf("</table>\n")
	}
	if len(counters) > 0 {
		bw.printf("<h2>Counters</h2>\n<table>\n<tr><th class=\"l\">metric</th><th class=\"l\">labels</th><th>value</th></tr>\n")
		for _, f := range counters {
			for _, s := range f.Series() {
				if s.Counter == nil || s.Counter.Value() == 0 {
					continue
				}
				bw.printf("<tr><td class=\"l\">%s</td><td class=\"l\">%s</td><td>%s</td></tr>\n",
					viz.Esc(f.Name), viz.Esc(labelSummary(f.LabelNames(), s.LabelValues)),
					trimFloat(s.Counter.Value()))
			}
		}
		bw.printf("</table>\n")
	}
}

// htmlCritPath renders the critical-path profiler's output: the
// per-service phase-blame table and — for tail exemplars whose spans
// carry cp:* annotations — the attribution waterfall, each query's
// end-to-end time partitioned into exclusive phases. Skipped when the
// registry carries no critpath sketches (unprofiled runs).
func htmlCritPath(bw *htmlWriter, reg *MetricsRegistry, exemplars []Exemplar) {
	if reg == nil {
		return
	}
	rows := ProfileFromMetrics(reg)
	if len(rows) == 0 {
		return
	}
	bw.printf("<h2>Critical-path attribution</h2>\n")
	bw.printf("<p class=\"note\">every sim-nanosecond of each query attributed to exactly one phase (phases sum to the end-to-end time; see docs/PROFILING.md). Share is the phase's fraction of the service's total attributed time.</p>\n")
	bw.printf("<table>\n<tr><th class=\"l\">service</th><th class=\"l\">phase</th><th>count</th><th>mean ms</th><th>p50 ms</th><th>p90 ms</th><th>p99 ms</th><th>share</th></tr>\n")
	for _, r := range rows {
		bw.printf("<tr><td class=\"l\">%s</td><td class=\"l\">%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%.2f%%</td></tr>\n",
			viz.Esc(r.Service), viz.Esc(r.Phase), r.Count,
			trimFloat(r.MeanMS), trimFloat(r.P50MS), trimFloat(r.P90MS),
			trimFloat(r.P99MS), r.SharePct)
	}
	bw.printf("</table>\n")

	// Phase waterfalls of the slowest annotated exemplars: only the
	// cp:* rows, so the flame view reads as a pure partition.
	const maxWaterfalls = 6
	shown := 0
	for _, e := range exemplars {
		if shown >= maxWaterfalls {
			break
		}
		if e.Span == nil {
			continue
		}
		var segs []viz.Interval
		base := e.Span.Start
		for _, c := range e.Span.Children {
			if c.Track != critpath.AnnotationTrack {
				continue
			}
			segs = append(segs, viz.Interval{
				Track: "critical path",
				Name:  strings.TrimPrefix(c.Name, "cp:"),
				Start: float64(c.Start-base) / float64(time.Millisecond),
				End:   float64(c.End-base) / float64(time.Millisecond),
			})
		}
		if len(segs) == 0 {
			continue
		}
		shown++
		bw.printf("<figure>%s</figure>\n", viz.Timeline(segs, viz.Options{
			Title:  fmt.Sprintf("phase waterfall — exemplar #%d (Tdynamic %.1f ms)", e.Seq, 1000*e.Value),
			XLabel: "ms since query start", Width: 900,
		}))
	}
}

// htmlFastPath renders the fast-forward engine's activity: how much of
// the simulated traffic bypassed the event heap via analytic
// fast-forwarding, and how often connections entered or abandoned
// those epochs. Skipped when the registry carries no fastpath gauges
// (pre-fast-path metric dumps).
func htmlFastPath(bw *htmlWriter, reg *MetricsRegistry) {
	u, ok := FastPathUsageFrom(reg)
	if !ok {
		return
	}
	bw.printf("<h2>Fast-forward engine</h2>\n")
	bw.printf("<p class=\"note\">TCP transfers are fast-forwarded: segment deliveries are computed analytically and bypass the global event heap (packet-equivalent by construction; the busiest study cell's snapshot after the shard merge). Lossy flows alternate between analytic epochs and per-packet recovery exchanges — a send-time lane drop suspends the epoch, and the lane re-enters once the retransmission is cumulatively ACKed.</p>\n")
	bw.printf("<table>\n<tr><th class=\"l\">gauge</th><th>value</th></tr>\n")
	bw.printf("<tr><td class=\"l\">fastpath_epochs</td><td>%s</td></tr>\n", trimFloat(u.Epochs))
	bw.printf("<tr><td class=\"l\">fastpath_bytes</td><td>%s</td></tr>\n", trimFloat(u.Bytes))
	bw.printf("<tr><td class=\"l\">fastpath_fallbacks</td><td>%s</td></tr>\n", trimFloat(u.Fallbacks))
	if u.HasReasons {
		bw.printf("<tr><td class=\"l\">&nbsp;&nbsp;reason: loss</td><td>%s</td></tr>\n", trimFloat(u.FallbackLoss))
		bw.printf("<tr><td class=\"l\">&nbsp;&nbsp;reason: topology</td><td>%s</td></tr>\n", trimFloat(u.FallbackTopology))
		bw.printf("<tr><td class=\"l\">&nbsp;&nbsp;reason: teardown</td><td>%s</td></tr>\n", trimFloat(u.FallbackTeardown))
		bw.printf("<tr><td class=\"l\">&nbsp;&nbsp;reason: disabled</td><td>%s</td></tr>\n", trimFloat(u.FallbackDisabled))
		bw.printf("<tr><td class=\"l\">&nbsp;&nbsp;reason: loss-recovery</td><td>%s</td></tr>\n", trimFloat(u.FallbackLossRecovery))
	}
	bw.printf("<tr><td class=\"l\">fastpath_reentries</td><td>%s</td></tr>\n", trimFloat(u.Reentries))
	bw.printf("<tr><td class=\"l\">fastpath_loss_drops</td><td>%s</td></tr>\n", trimFloat(u.LossDrops))
	bw.printf("<tr><td class=\"l\">fastpath_epoch_segments</td><td>%s</td></tr>\n", trimFloat(u.EpochSegments))
	bw.printf("</table>\n")
}

// htmlRuntime renders the deterministic engine gauges — scheduler
// depth watermarks and the per-path snapshot families' siblings — as
// the report's runtime section. Only sim-time gauges appear here:
// wall-clock telemetry (heap, GC, events/sec) lives in runtime.jsonl
// and the -listen endpoints, never in deterministic exports.
func htmlRuntime(bw *htmlWriter, reg *MetricsRegistry) {
	if reg == nil {
		return
	}
	var gauges []*obs.Family
	for _, f := range reg.Families() {
		// The per-path traffic snapshots are a family per directed
		// link — thousands of rows at fleet scale; the Prometheus and
		// JSONL exports carry them in full.
		if f.Kind == obs.KindGauge && !strings.HasPrefix(f.Name, "net_path_") {
			gauges = append(gauges, f)
		}
	}
	if len(gauges) == 0 {
		return
	}
	bw.printf("<h2>Engine runtime gauges</h2>\n")
	bw.printf("<p class=\"note\">deterministic engine state snapshots (value and historical max; after a shard merge each series carries the busiest cell's snapshot — gauges merge by max).</p>\n")
	bw.printf("<table>\n<tr><th class=\"l\">gauge</th><th class=\"l\">labels</th><th>value</th><th>max</th></tr>\n")
	for _, f := range gauges {
		for _, s := range f.Series() {
			if s.Gauge == nil || (s.Gauge.Value() == 0 && s.Gauge.Max() == 0) {
				continue
			}
			bw.printf("<tr><td class=\"l\">%s</td><td class=\"l\">%s</td><td>%s</td><td>%s</td></tr>\n",
				viz.Esc(f.Name), viz.Esc(labelSummary(f.LabelNames(), s.LabelValues)),
				trimFloat(s.Gauge.Value()), trimFloat(s.Gauge.Max()))
		}
	}
	bw.printf("</table>\n")
}

// htmlExemplars renders the tail-sampled span trees as timelines.
func htmlExemplars(bw *htmlWriter, exemplars []Exemplar) {
	if len(exemplars) == 0 {
		return
	}
	bw.printf("<h2>Tail exemplars</h2>\n")
	bw.printf("<p class=\"note\">span trees retained by the tail sampler: slowest-T<sub>dynamic</sub> queries plus every inference-bound violation.</p>\n")
	const maxTimelines = 16
	shown := 0
	for _, e := range exemplars {
		if shown >= maxTimelines {
			bw.printf("<p class=\"note\">… %d more exemplars not shown</p>\n", len(exemplars)-shown)
			break
		}
		if e.Span == nil {
			continue
		}
		shown++
		title := fmt.Sprintf("exemplar #%d — Tdynamic %.1f ms", e.Seq, 1000*e.Value)
		if e.Violation {
			bw.printf("<p class=\"violation\">bound violation: Tfetch outside [Tdelta, Tdynamic]</p>\n")
		}
		bw.printf("<figure>%s</figure>\n", viz.Timeline(spanIntervals(e.Span), viz.Options{
			Title: title, XLabel: "ms since query start", Width: 900,
		}))
	}
}

// spanIntervals flattens a span tree into timeline rows, times in ms
// relative to the root's start.
func spanIntervals(root *Span) []viz.Interval {
	base := root.Start
	var out []viz.Interval
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		out = append(out, viz.Interval{
			Track: s.Track,
			Name:  s.Name,
			Start: float64(s.Start-base) / float64(time.Millisecond),
			End:   float64(s.End-base) / float64(time.Millisecond),
			Depth: depth,
		})
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return out
}

// labelSummary renders name=value pairs for metric tables.
func labelSummary(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	parts := make([]string, len(names))
	for i := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		parts[i] = names[i] + "=" + v
	}
	return strings.Join(parts, ", ")
}

// trimFloat renders a float compactly but deterministically.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// msf converts a duration to float milliseconds (shared with report.go's
// ms, kept separate to avoid touching its signature).
func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
