package fesplit

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// sampleReport builds a small hand-rolled report exercising every HTML
// section without running the (slow) full study.
func sampleReport() *Report {
	return &Report{
		Config: StudyConfig{Seed: 7, Nodes: 4},
		Fig5: []*Fig5Data{{
			Service: "google-like", FixedFE: "google-fe-lenoir",
			Nodes: []NodeSummary{
				{Node: "n1", RTT: 12 * time.Millisecond, MedStatic: 30 * time.Millisecond,
					MedDynamic: 150 * time.Millisecond, MedDelta: 90 * time.Millisecond},
				{Node: "n2", RTT: 80 * time.Millisecond, MedStatic: 90 * time.Millisecond,
					MedDynamic: 200 * time.Millisecond, MedDelta: 10 * time.Millisecond},
			},
			BoundLoMS: 10, TruthMS: 80, BoundHiMS: 150, BoundsOK: true,
			ThresholdMS: 75, HasThresh: true,
		}},
		Fig6: []*Fig6Data{
			{Service: "google-like", RTTsMS: []float64{8, 20, 45, 90}, FracUnder20ms: 0.25},
			{Service: `bing<&>"like"`, RTTsMS: []float64{5, 9, 14, 30}, FracUnder20ms: 0.75},
		},
		Fig7: []*Fig7Data{{
			Service: "google-like",
			Nodes: []NodeSummary{
				{Node: "n1", RTT: 10 * time.Millisecond, MedStatic: 25 * time.Millisecond,
					MedDynamic: 120 * time.Millisecond},
			},
			MedStaticMS: 25, MedDynamicMS: 120, IQRStaticMS: 4, IQRDynMS: 30,
		}},
		Fig8: []*Fig8Data{{
			Service: "google-like",
			Nodes:   []string{"n1", "n2"},
			Boxes: []BoxPlot{
				{Min: 100, Q1: 120, Median: 140, Q3: 170, Max: 260, WhiskerLow: 100, WhiskerHigh: 240},
				{Min: 90, Q1: 110, Median: 130, Q3: 150, Max: 200, WhiskerLow: 90, WhiskerHigh: 200},
			},
			MedOverallMS: 135, SpreadMS: 45,
		}},
	}
}

func sampleObs() (*MetricsRegistry, []Exemplar) {
	o := NewTailObserver(TailConfig{Percentile: 0.5, MaxExemplars: 4})
	reg := o.Registry()
	reg.Counter("sim_events_total", "events").Add(999)
	reg.Gauge("fastpath_epochs", "epochs").Set(12)
	reg.Gauge("fastpath_bytes", "bytes").Set(3.5e6)
	reg.Gauge("fastpath_fallbacks", "fallbacks").Set(2)
	sk := reg.SketchVec("session_param_seconds", "params", 0.01, "service", "phase").
		With("google-like", "tdynamic")
	for i := 1; i <= 100; i++ {
		sk.Observe(float64(i) / 100)
	}
	ts := o.TailSampler()
	for i := 0; i < 10; i++ {
		root := &Span{Name: "query", Track: "client",
			Start: time.Duration(i) * time.Second,
			End:   time.Duration(i)*time.Second + 200*time.Millisecond}
		root.Child("handshake", root.Start, root.Start+40*time.Millisecond)
		fe := root.Child("fe-fetch", root.Start+50*time.Millisecond, root.Start+180*time.Millisecond)
		fe.Track = "frontend"
		ts.Offer(0.1+float64(i)*0.01, i == 3, root)
	}
	return reg, ts.Select()
}

func TestWriteHTMLDeterministicAndComplete(t *testing.T) {
	rep := sampleReport()
	reg, ex := sampleObs()
	render := func() []byte {
		var b bytes.Buffer
		if err := rep.WriteHTML(&b, reg, ex); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("WriteHTML is not deterministic")
	}
	out := string(a)
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Figure 6",
		"Figure 5",
		"Figure 7",
		"Figure 8",
		"Metric quantiles",
		"session_param_seconds",
		"service=google-like, phase=tdynamic",
		"Counters",
		"sim_events_total",
		"Fast-forward engine",
		"fastpath_bytes",
		"Tail exemplars",
		"bound violation",
		"<svg",
		"bing&lt;&amp;&gt;&quot;like&quot;", // service names are escaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Contains(out, `bing<&>`) {
		t.Error("unescaped service name leaked into HTML")
	}
	// Violation exemplar must always render even with a tight cap.
	if got := strings.Count(out, `<p class="violation">`); got != 1 {
		t.Errorf("%d violation badges, want 1", got)
	}
}

func TestFastPathUsageFrom(t *testing.T) {
	reg, _ := sampleObs()
	u, ok := FastPathUsageFrom(reg)
	if !ok {
		t.Fatal("FastPathUsageFrom found no gauges in a registry that has them")
	}
	if u.Epochs != 12 || u.Bytes != 3.5e6 || u.Fallbacks != 2 {
		t.Fatalf("usage = %+v, want {12 3.5e+06 2}", u)
	}
	if _, ok := FastPathUsageFrom(nil); ok {
		t.Error("nil registry reported fast-path gauges")
	}
	empty := NewObserver().Registry()
	if _, ok := FastPathUsageFrom(empty); ok {
		t.Error("empty registry reported fast-path gauges")
	}
}

func TestWriteHTMLEmptyReport(t *testing.T) {
	var b bytes.Buffer
	if err := (&Report{}).WriteHTML(&b, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "<!DOCTYPE html>") || !strings.Contains(out, "</html>") {
		t.Fatal("empty report did not render a complete page")
	}
	if strings.Contains(out, "Figure") {
		t.Error("empty report rendered figure sections")
	}
}
