#!/usr/bin/env bash
# Profile/diff smoke test, end to end through the CLI: run two seeded
# profiled studies and assert the regression gate's two contracts —
# `fesplit diff` exits 0 on a same-seed pair (identical runs carry no
# regressions), and exits nonzero naming the BE-processing phase on a
# pair with an injected BE-latency regression (-be-slowdown).
#
# Usage: scripts/profile_smoke.sh [path-to-fesplit-binary]
set -euo pipefail

bin=${1:-./bin/fesplit}
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

"$bin" profile -seed 7 -workers 2 -dir "$out/base" 2>"$out/base.log"
"$bin" profile -seed 7 -workers 2 -dir "$out/same" 2>"$out/same.log"
"$bin" profile -seed 7 -workers 2 -be-slowdown 2.0 -dir "$out/slow" 2>"$out/slow.log"

for f in profile.csv metrics.jsonl spans.jsonl report.html; do
    [ -s "$out/base/$f" ] || { echo "profile output missing $f"; exit 1; }
done
grep -q '^service,phase,count' "$out/base/profile.csv" \
    || { echo "profile.csv missing blame header"; head "$out/base/profile.csv"; exit 1; }
grep -q 'be-proc' "$out/base/profile.csv" \
    || { echo "profile.csv missing be-proc phase"; exit 1; }
grep -q 'critical-path blame' "$out/base.log" \
    || { echo "stderr missing blame table"; cat "$out/base.log"; exit 1; }

# Same-seed runs must be byte-identical (determinism contract) and
# diff clean with exit 0.
diff -r "$out/base" "$out/same" >/dev/null \
    || { echo "same-seed profile runs differ"; exit 1; }
"$bin" diff "$out/base" "$out/same" >"$out/diff-same.txt" \
    || { echo "diff failed on identical runs:"; cat "$out/diff-same.txt"; exit 1; }
grep -q ' 0 regressions' "$out/diff-same.txt" \
    || { echo "same-seed diff reported regressions:"; cat "$out/diff-same.txt"; exit 1; }

# The injected 2× BE slowdown must breach, exit nonzero, and the
# verdict table must name the BE-processing critical-path phase.
if "$bin" diff "$out/base" "$out/slow" >"$out/diff-slow.txt"; then
    echo "diff exited 0 on injected BE slowdown:"; cat "$out/diff-slow.txt"; exit 1
fi
grep -q 'REGRESSED' "$out/diff-slow.txt" \
    || { echo "no REGRESSED verdicts on slowdown pair:"; cat "$out/diff-slow.txt"; exit 1; }
grep -q 'critpath_phase_seconds.*phase=be-proc' "$out/diff-slow.txt" \
    || { echo "regression table does not name be-proc:"; cat "$out/diff-slow.txt"; exit 1; }

echo "profile smoke: ok (blame table + same-seed clean diff + injected regression caught naming be-proc)"
