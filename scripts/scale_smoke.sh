#!/usr/bin/env bash
# Scale smoke test: the bounded-memory fleet contract, end to end
# through the CLI.
#
#   1. A 10⁴-client streaming diurnal campaign must complete every
#      arrival with the heap watermark under the pinned bound and a
#      pooled-slot count that tracks peak concurrency, not clients.
#   2. fleet.csv must be byte-identical for -workers 1 and -workers 4
#      (the sharded fleet runner's determinism contract).
#   3. The small-scale figure CSVs must stay byte-identical to the
#      golden copies in testdata/golden — scaling machinery must never
#      perturb the regular study.
#
# Usage: scripts/scale_smoke.sh [path-to-fesplit-binary]
# Env:   SCALE_HEAP_BOUND_MIB (default 192) — the pinned heap bound,
#        matching TestFleetStudyHeapBound.
set -euo pipefail

bin=${1:-./bin/fesplit}
bound=${SCALE_HEAP_BOUND_MIB:-192}
clients=10000
out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

# --- 1. bounded-memory campaign -------------------------------------
"$bin" study -diurnal -clients "$clients" -horizon 4m -seed 42 \
    -workers 4 -dir "$out/fleet-w4" 2>"$out/fleet.log"
cat "$out/fleet.log"

heap=$(sed -n "s/^study: overall .*peak heap \([0-9.]*\) MiB for ${clients} clients\$/\1/p" \
    "$out/fleet.log" | head -1)
[ -n "$heap" ] || { echo "no peak-heap summary on stderr"; exit 1; }
awk -v h="$heap" -v b="$bound" 'BEGIN { exit !(h + 0 > 0 && h + 0 < b) }' \
    || { echo "peak heap ${heap} MiB outside (0, ${bound}) MiB bound"; exit 1; }

total=$(grep '^total,' "$out/fleet-w4/fleet.csv")
case "$total" in
    total,${clients},${clients},*) ;;
    *) echo "fleet.csv totals not ${clients}/${clients}: $total"; exit 1 ;;
esac
# Field 5 is the pooled slot count: the campaign's whole point is that
# it tracks peak concurrency (the diurnal curve), not the client count.
echo "$total" | awk -F, -v c="$clients" \
    '{ exit !($5 + 0 > 0 && $5 + 0 < c / 5) }' \
    || { echo "pooled slots not compact: $total"; exit 1; }
echo "scale smoke: ${clients} clients, peak heap ${heap} MiB < ${bound} MiB, slots $(echo "$total" | cut -d, -f5)"

# --- 2. worker-invariant fleet.csv ----------------------------------
"$bin" study -diurnal -clients "$clients" -horizon 4m -seed 42 \
    -workers 1 -dir "$out/fleet-w1" 2>>"$out/fleet.log"
cmp "$out/fleet-w1/fleet.csv" "$out/fleet-w4/fleet.csv" \
    || { echo "fleet.csv differs between -workers 1 and -workers 4"; exit 1; }
echo "scale smoke: fleet.csv byte-identical across worker counts"

# --- 3. small-scale figures still match golden ----------------------
"$bin" study -seed 42 -workers 2 -dir "$out/figs" 2>"$out/figs.log"
for g in testdata/golden/*.csv; do
    cmp "$g" "$out/figs/$(basename "$g")" \
        || { echo "figure $(basename "$g") drifted from golden"; exit 1; }
done
echo "scale smoke: ok (heap bound + worker invariance + golden figures)"
