#!/usr/bin/env bash
# Telemetry smoke test: run a short study with every telemetry surface
# enabled — heartbeat, runtime.jsonl, streaming record sink and the
# HTTP endpoint — then scrape /metrics and /progress while the endpoint
# lingers and check the expected series and snapshot keys are there.
#
# Usage: scripts/telemetry_smoke.sh [path-to-fesplit-binary]
set -euo pipefail

bin=${1:-./bin/fesplit}
out=$(mktemp -d)
log="$out/stderr.log"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$out"' EXIT

"$bin" study -seed 7 -workers 2 -dir "$out/study" \
    -progress -stream -listen 127.0.0.1:0 -linger 60s 2>"$log" &
pid=$!

# The CLI prints the resolved listen address (port 0 → kernel-chosen)
# to stderr before the run starts.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^study: telemetry listening on http://##p' "$log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "study exited before listening:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "no listen address in stderr:"; cat "$log"; exit 1; }
echo "telemetry endpoint: $addr"

fetch() {
    if command -v curl >/dev/null; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# Wait for the study itself to finish (the peak-heap summary line) so
# the scraped totals reflect a complete run; the endpoint lingers.
for _ in $(seq 1 600); do
    grep -q '^study: peak heap' "$log" && break
    kill -0 "$pid" 2>/dev/null || { echo "study died mid-run:"; cat "$log"; exit 1; }
    sleep 0.1
done
grep -q '^study: peak heap' "$log" || { echo "study never finished:"; cat "$log"; exit 1; }

fetch "http://$addr/metrics" >"$out/metrics.txt"
fetch "http://$addr/progress" >"$out/progress.json"

for series in \
    fesplit_runtime_events_total \
    fesplit_runtime_sim_seconds_total \
    fesplit_runtime_heap_watermark_bytes \
    fesplit_runtime_tasks_done \
    fesplit_runtime_fastpath_bytes_total \
    'fesplit_runtime_fastpath_fallbacks_total{reason="loss"}' \
    fesplit_runtime_records_streamed_total; do
    grep -qF "$series" "$out/metrics.txt" \
        || { echo "/metrics missing $series"; cat "$out/metrics.txt"; exit 1; }
done

# A finished streaming run must have counted events and records.
awk '$1 == "fesplit_runtime_events_total" { if ($2+0 <= 0) exit 1; found=1 } END { exit !found }' \
    "$out/metrics.txt" || { echo "events_total not positive"; exit 1; }
awk '$1 == "fesplit_runtime_records_streamed_total" { if ($2+0 <= 0) exit 1; found=1 } END { exit !found }' \
    "$out/metrics.txt" || { echo "records_streamed_total not positive (streaming sink idle)"; exit 1; }

for key in '"events"' '"heap_watermark_bytes"' '"tasks"' '"records_streamed"'; do
    grep -qF "$key" "$out/progress.json" \
        || { echo "/progress missing $key"; cat "$out/progress.json"; exit 1; }
done

grep -q '^fesplit: ' "$log" || { echo "no heartbeat lines on stderr"; cat "$log"; exit 1; }
[ -s "$out/study/runtime.jsonl" ] || { echo "runtime.jsonl missing or empty"; exit 1; }
grep -qF '"events_per_sec"' "$out/study/runtime.jsonl" \
    || { echo "runtime.jsonl missing snapshot schema"; exit 1; }

kill "$pid"
wait "$pid" 2>/dev/null || true
echo "telemetry smoke: ok (heartbeat + runtime.jsonl + /metrics + /progress + streaming sink)"
