package fesplit

import (
	"fmt"
	"time"

	"fesplit/internal/analysis"
	"fesplit/internal/backend"
	"fesplit/internal/capture"
	"fesplit/internal/cdn"
	"fesplit/internal/emulator"
	"fesplit/internal/frontend"
	"fesplit/internal/geo"
	"fesplit/internal/httpsim"
	"fesplit/internal/obs"
	rt "fesplit/internal/obs/runtime"
	"fesplit/internal/shard"
	"fesplit/internal/simnet"
	"fesplit/internal/stats"
	"fesplit/internal/tcpsim"
	"fesplit/internal/workload"
)

// BoxPlot is the five-number summary with Tukey whiskers (Figure 8).
type BoxPlot = stats.BoxPlot

// StudyConfig scales the reproduction study.
type StudyConfig struct {
	// Seed drives every random choice; equal seeds reproduce the
	// study bit-identically.
	Seed int64
	// Nodes is the vantage fleet size (paper: 200–250).
	Nodes int
	// QueriesPerNodeA and IntervalA parameterize Experiment A
	// (default-FE, paper pacing: one query every 10 s).
	QueriesPerNodeA int
	IntervalA       time.Duration
	// RepeatsB and IntervalB parameterize Experiment B (fixed FE;
	// paper: 720 repeats).
	RepeatsB  int
	IntervalB time.Duration
	// Fig3Samples sequential queries per keyword class, smoothed with
	// a moving median of Fig3Window (paper: 500 samples, window 10).
	Fig3Samples int
	Fig3Window  int
	// Fig9RTTCap: only sessions with client RTT below this
	// approximate Tfetch by Tdynamic (paper Section 5).
	Fig9RTTCap time.Duration
	// Fig9MileCap drops FEs farther than this from the data center —
	// the paper's revision "only consider[s] front-end servers close
	// enough to the BE servers" (its Figure-9 x-range is a few hundred
	// miles). Default 2000.
	Fig9MileCap float64
	// CachingRepeats per node for the Section-3 probe.
	CachingRepeats int
	// Workers caps the goroutines running study cells and node batches
	// (0 → runtime.NumCPU, negative → error). Workers schedules work,
	// nothing else: every figure, metrics dump and report is
	// byte-identical for Workers=1 and Workers=N. See docs/PARALLEL.md.
	Workers int
	// NodeBatches splits the default-FE campaign (Figures 6–8) into
	// this many independent node-batch worlds (0 →
	// emulator.DefaultNodeBatches). Unlike Workers it IS part of the
	// shard layout: changing it changes the (still deterministic)
	// figure data, because batches are isolated simulations.
	NodeBatches int
	// StreamRecords switches the default-FE campaign (Figures 6–8) to
	// the streaming record path: each node batch folds its records into
	// mergeable accumulators (parameter lists, quantile sketches, tail
	// samplers) at emission time and drops the batch dataset, so the
	// campaign's live heap is bounded by one batch world instead of the
	// full record history. Figure output is byte-identical either way;
	// only exported sketch Sum fields may differ in final-bit float
	// rounding (merge order). See docs/METRICS.md.
	StreamRecords bool
	// BESlowdown, when > 0 and ≠ 1, scales both deployments' BE
	// processing-cost model (base and per-term) by this factor — a
	// controlled latency-regression injection for exercising the
	// `fesplit diff` gate (the be-proc critical-path phase must move,
	// nothing else should). Zero leaves the calibrated models untouched.
	BESlowdown float64
}

// DefaultStudyConfig is the full paper-scale configuration. A complete
// run takes a few minutes of wall time.
func DefaultStudyConfig(seed int64) StudyConfig {
	return StudyConfig{
		Seed:            seed,
		Nodes:           250,
		QueriesPerNodeA: 20,
		IntervalA:       10 * time.Second,
		RepeatsB:        720,
		IntervalB:       10 * time.Second,
		Fig3Samples:     500,
		Fig3Window:      10,
		Fig9RTTCap:      40 * time.Millisecond,
		Fig9MileCap:     2000,
		CachingRepeats:  20,
	}
}

// LightStudyConfig is a scaled-down configuration for tests, benches
// and quick exploration: the same shapes at ~1% of the compute.
func LightStudyConfig(seed int64) StudyConfig {
	return StudyConfig{
		Seed:            seed,
		Nodes:           50,
		QueriesPerNodeA: 6,
		IntervalA:       3 * time.Second,
		RepeatsB:        10,
		IntervalB:       3 * time.Second,
		Fig3Samples:     60,
		Fig3Window:      10,
		Fig9RTTCap:      40 * time.Millisecond,
		Fig9MileCap:     2000,
		CachingRepeats:  6,
	}
}

// Study runs the reproduction experiments and caches shared datasets.
type Study struct {
	cfg        StudyConfig
	expA       map[string]*expAResult
	boundaries map[string]int
	// obsv, when non-nil, collects this study's metrics and tail
	// exemplars. Set only on the per-cell sub-studies RunAllObserved
	// spawns — a Study is not goroutine-safe, so observation is wired
	// per cell and merged in canonical order afterwards.
	obsv *obs.Observer
	// rt, when non-nil, receives wall-clock engine telemetry (event
	// rates, heap watermarks, fast-path activity, cell progress) from
	// every world this study builds. Unlike obsv it is shared across
	// cells — the engine is atomic — and it is pure observation: every
	// deterministic output is byte-identical with or without it.
	rt *rt.Engine
}

// NewStudy creates a study with the given configuration.
func NewStudy(cfg StudyConfig) *Study {
	return &Study{
		cfg:        cfg,
		expA:       make(map[string]*expAResult),
		boundaries: make(map[string]int),
	}
}

// boundaryFor derives (and caches) a service's static/dynamic content
// boundary with a small dedicated probe run: a handful of distinct
// queries from a node near its default FE, full payload capture, then
// cross-query content analysis. The boundary is a property of the
// service's content, so one probe serves every experiment — including
// the large payload-snapped campaigns where content analysis is
// impossible by design.
func (s *Study) boundaryFor(cfg DeploymentConfig) (int, error) {
	if b, ok := s.boundaries[cfg.Name]; ok {
		return b, nil
	}
	runner, err := emulator.New(s.cfg.Seed+71, cfg,
		emulator.Options{Nodes: 6, FleetSeed: s.cfg.Seed + 72, Runtime: s.rt})
	if err != nil {
		return 0, err
	}
	fe := runner.Dep.DefaultFE(runner.Fleet.Nodes[0].Point)
	node := runner.NearestNode(fe)
	sweep := runner.KeywordSweep(fe, node, 2, 2*time.Second, s.cfg.Seed+73)
	merged := &emulator.Dataset{}
	for _, sd := range sweep {
		merged.Records = append(merged.Records, sd.Records...)
	}
	b := analysis.BoundaryFromDataset(merged)
	if b <= 0 {
		return 0, fmt.Errorf("fesplit: boundary probe failed for %s", cfg.Name)
	}
	s.boundaries[cfg.Name] = b
	return b, nil
}

// Config returns the study configuration.
func (s *Study) Config() StudyConfig { return s.cfg }

// SetRuntime attaches an engine-telemetry hub. Every simulated world
// the study subsequently builds publishes event counts, sim-time
// progress, fast-path activity and heap samples to it, and the cell
// matrix reports task progress. Telemetry never feeds back into the
// simulation: results are byte-identical with or without it.
func (s *Study) SetRuntime(e *rt.Engine) { s.rt = e }

// Runtime returns the attached telemetry hub (nil when unset).
func (s *Study) Runtime() *rt.Engine { return s.rt }

// serviceConfigs returns the two deployments under study, with the
// configured BE-slowdown injection (if any) applied to both.
func (s *Study) serviceConfigs() []DeploymentConfig {
	cfgs := []DeploymentConfig{BingLike(s.cfg.Seed + 1), GoogleLike(s.cfg.Seed + 2)}
	if f := s.cfg.BESlowdown; f > 0 && f != 1 {
		for i := range cfgs {
			cfgs[i].Cost.Base = time.Duration(float64(cfgs[i].Cost.Base) * f)
			cfgs[i].Cost.PerTerm = time.Duration(float64(cfgs[i].Cost.PerTerm) * f)
		}
	}
	return cfgs
}

type expAResult struct {
	ds       *Dataset
	boundary int
	params   []Params
	nodes    []NodeSummary
}

// aSink folds one batch's default-FE records into mergeable
// accumulators at emission time — the streaming alternative to
// retaining the batch dataset. It applies exactly the skip conditions
// of analysis.ExtractDataset (failed record, no events, unparseable
// session), so the concatenated per-batch parameter lists equal the
// merged-dataset extraction byte for byte; tail offers additionally
// require an assembled span, mirroring analysis.SampleTails.
type aSink struct {
	boundary int
	po       *analysis.ParamObserver
	co       *analysis.CritObserver
	ts       *obs.TailSampler
	params   []Params
}

// Consume implements emulator.RecordSink.
func (k *aSink) Consume(rec *emulator.Record) {
	if rec.Failed || len(rec.Events) == 0 {
		return
	}
	p, err := analysis.ExtractRecord(*rec, k.boundary)
	if err != nil {
		return
	}
	k.params = append(k.params, p)
	k.po.Observe(p)
	// Critical-path attribution annotates the span before the tail
	// sampler can retain it, so exemplars carry the cp:* waterfall.
	if k.co != nil {
		if a, ok := analysis.AttributeRecord(rec, k.boundary); ok {
			k.co.Observe(a, rec.TrueFetch)
		}
	}
	if k.ts != nil && rec.Span != nil {
		analysis.SampleTail(k.ts, rec, p, DefaultBoundTolerance)
	}
}

// expABatches resolves the node-batch count the sharded campaign will
// use — the same clamping emulator.RunShardedA applies.
func (s *Study) expABatches() int {
	k := s.cfg.NodeBatches
	if k <= 0 {
		k = emulator.DefaultNodeBatches
	}
	if k > s.cfg.Nodes {
		k = s.cfg.Nodes
	}
	if k < 1 {
		k = 1
	}
	return k
}

// experimentA runs (or returns the cached) default-FE experiment for a
// service: the fleet split into node batches (each an independent
// simulated world, see emulator.RunShardedA), merged in batch order.
// When the study is observed, each batch records into its own observer
// and the registries merge here — also in batch order — then the
// session parameters and tail exemplars are fed from the merged
// dataset, so the observed view is identical for any worker count.
//
// With StreamRecords set the campaign instead streams: each batch's
// records fold into a per-batch aSink (parameters, sketches, tail
// offers) and the batch dataset is dropped. Batch accumulators merge in
// batch order, which is exactly equivalent to the serial feed — same
// parameters, same exemplar selection — so figure output is identical;
// only the expAResult's dataset is nil (no figure consumes it).
func (s *Study) experimentA(cfg DeploymentConfig) (*expAResult, error) {
	if r, ok := s.expA[cfg.Name]; ok {
		return r, nil
	}
	// The boundary probe is an independent world; streaming needs it
	// before the campaign (records are measured as they are dropped).
	boundary, err := s.boundaryFor(cfg)
	if err != nil {
		return nil, err
	}
	sopts := emulator.ShardedAOptions{
		SimSeed:    s.cfg.Seed + 11,
		Deployment: cfg,
		Runner:     emulator.Options{Nodes: s.cfg.Nodes, FleetSeed: s.cfg.Seed + 12},
		A: emulator.AOptions{
			QueriesPerNode: s.cfg.QueriesPerNodeA,
			Interval:       s.cfg.IntervalA,
			QuerySeed:      s.cfg.Seed + 13,
		},
		Batches: s.cfg.NodeBatches,
		Workers: s.cfg.Workers,
		Runtime: s.rt,
	}
	// batchObsSlots pairs each batch's observer with its sink: Observe
	// runs at batch start, Sink after the batch's records exist, both on
	// the batch's own goroutine, and each batch touches only its slot.
	var batchObsSlots []*obs.Observer
	if s.obsv != nil {
		if s.cfg.StreamRecords {
			batchObsSlots = make([]*obs.Observer, s.expABatches())
		}
		sopts.Observe = func(b shard.Batch) *obs.Observer {
			o := obs.NewTailObserver(s.obsv.Tail.Config())
			if batchObsSlots != nil {
				batchObsSlots[b.Index] = o
			}
			return o
		}
	}
	if s.cfg.StreamRecords {
		sopts.Sink = func(b shard.Batch) emulator.RecordSink {
			k := &aSink{boundary: boundary}
			if batchObsSlots != nil {
				o := batchObsSlots[b.Index]
				k.po = analysis.NewParamObserver(o.Registry(), cfg.Name)
				k.co = analysis.NewCritObserver(o.Registry(), cfg.Name)
				k.ts = o.Tail
			}
			return k
		}
	}
	ds, batchObs, batchSinks, err := emulator.RunShardedA(sopts)
	if err != nil {
		return nil, err
	}
	var params []Params
	if s.cfg.StreamRecords {
		// Concatenating per-batch accumulators in batch order replays
		// the serial record order exactly.
		for _, bs := range batchSinks {
			params = append(params, bs.(*aSink).params...)
		}
	} else {
		params = analysis.ExtractDataset(ds, boundary)
	}
	if s.obsv != nil {
		for _, o := range batchObs {
			if err := s.obsv.Reg.Merge(o.Registry()); err != nil {
				return nil, err
			}
		}
		if s.cfg.StreamRecords {
			// Batch tail samplers were fed during the run; fold them
			// into the study sampler in batch order (equivalent to the
			// serial Offer sequence — see obs.MergeTailSamplers).
			samplers := make([]*obs.TailSampler, 0, len(batchObs)+1)
			samplers = append(samplers, s.obsv.Tail)
			for _, o := range batchObs {
				samplers = append(samplers, o.Tail)
			}
			s.obsv.Tail = obs.MergeTailSamplers(samplers...)
		} else {
			analysis.ObserveParams(s.obsv.Registry(), cfg.Name, params)
			// Attribute (and annotate spans) before tail sampling, so
			// retained exemplars carry the cp:* waterfall.
			analysis.ObserveCritPath(s.obsv.Registry(), cfg.Name, ds, boundary)
			analysis.SampleTails(s.obsv.TailSampler(), ds, boundary, DefaultBoundTolerance)
		}
	}
	res := &expAResult{
		ds:       ds,
		boundary: boundary,
		params:   params,
		nodes:    analysis.PerNode(params),
	}
	s.expA[cfg.Name] = res
	return res, nil
}

// --- Figure 3 ---

// Fig3Data holds the keyword-class effect series (milliseconds, moving
// medians) for one service.
type Fig3Data struct {
	Service  string
	Classes  []QueryClass
	Tstatic  map[QueryClass][]float64
	Tdynamic map[QueryClass][]float64
}

// Fig3 reproduces Figure 3: Tstatic and Tdynamic across sequential
// samples for four keyword classes against one fixed Bing-like FE.
func (s *Study) Fig3() (*Fig3Data, error) {
	cfg := BingLike(s.cfg.Seed + 1)
	runner, err := emulator.New(s.cfg.Seed+21, cfg,
		emulator.Options{Nodes: 8, FleetSeed: s.cfg.Seed + 22, Runtime: s.rt})
	if err != nil {
		return nil, err
	}
	fe := runner.Dep.DefaultFE(runner.Fleet.Nodes[0].Point)
	sweeps := runner.KeywordSweep(fe, runner.Fleet.Nodes[0],
		s.cfg.Fig3Samples, 2*time.Second, s.cfg.Seed+23)

	// Boundary from cross-class payloads.
	var all []*Dataset
	for _, ds := range sweeps {
		all = append(all, ds)
	}
	merged := &emulator.Dataset{Service: cfg.Name, Experiment: "fig3"}
	for _, ds := range all {
		merged.Records = append(merged.Records, ds.Records...)
	}
	boundary := analysis.BoundaryFromDataset(merged)
	if boundary <= 0 {
		return nil, fmt.Errorf("fesplit: fig3 boundary not found")
	}

	out := &Fig3Data{
		Service:  cfg.Name,
		Classes:  workload.Classes(),
		Tstatic:  map[QueryClass][]float64{},
		Tdynamic: map[QueryClass][]float64{},
	}
	for _, class := range out.Classes {
		params := analysis.ExtractDataset(sweeps[class], boundary)
		var st, dy []float64
		for _, p := range params {
			st = append(st, float64(p.Tstatic)/float64(time.Millisecond))
			dy = append(dy, float64(p.Tdynamic)/float64(time.Millisecond))
		}
		out.Tstatic[class] = stats.MovingMedian(st, s.cfg.Fig3Window)
		out.Tdynamic[class] = stats.MovingMedian(dy, s.cfg.Fig3Window)
	}
	return out, nil
}

// --- Figure 4 ---

// Fig4Event is one packet event on a client timeline.
type Fig4Event struct {
	AtMS    float64
	Send    bool
	Payload int
	Flags   string
}

// Fig4Row is one client's timeline.
type Fig4Row struct {
	RTTMS  float64
	Events []Fig4Event
}

// Fig4 reproduces Figure 4: packet-event timelines of one query from
// five clients at increasing RTTs to the same Bing-like FE, showing the
// static and dynamic clusters merging as RTT grows.
func (s *Study) Fig4() ([]Fig4Row, error) {
	// The paper's five sample RTTs.
	rtts := []time.Duration{
		10656 * time.Microsecond,
		30003 * time.Microsecond,
		86647 * time.Microsecond,
		160380 * time.Microsecond,
		243250 * time.Microsecond,
	}
	sim := simnet.New(s.cfg.Seed + 31)
	net := simnet.NewNetwork(sim)
	if s.rt != nil {
		sim.SetRuntime(s.rt)
		net.SetRuntime(s.rt)
	}
	spec := workload.DefaultContentSpec("bing-like")
	if _, err := backend.New(net, "be", geo.Site{Name: "be"}, spec,
		backend.BingCostModel(), backend.Options{}, s.cfg.Seed+32); err != nil {
		return nil, err
	}
	fe, err := frontend.New(net, frontend.Config{
		Host: "fe", BEHost: "be", Static: spec.StaticPrefix(),
		Load: frontend.SharedCDNLoadModel(), Seed: s.cfg.Seed + 33,
	})
	if err != nil {
		return nil, err
	}
	net.SetLink("fe", "be", simnet.PathParams{Delay: 12 * time.Millisecond})
	fe.Prewarm(len(rtts))
	sim.RunFor(time.Second)

	gen := workload.NewGenerator(s.cfg.Seed + 34)
	q := gen.Query(workload.ClassGranular)
	rows := make([]Fig4Row, len(rtts))
	recs := make([]*capture.Recorder, len(rtts))
	starts := make([]time.Duration, len(rtts))
	for i, rtt := range rtts {
		host := simnet.HostID(fmt.Sprintf("fig4-client-%d", i))
		net.SetLink(host, "fe", simnet.PathParams{Delay: rtt / 2})
		ep := tcpsim.NewEndpoint(net, host, tcpsim.Config{})
		rec := capture.NewRecorder(string(host))
		ep.Tap = rec.Tap
		recs[i] = rec
		starts[i] = sim.Now()
		httpsim.Get(ep, "fe", frontend.FEPort, httpsim.NewGet("bing-like", q.Path()),
			httpsim.ResponseCallbacks{})
	}
	sim.Run()
	for i, rec := range recs {
		row := Fig4Row{RTTMS: float64(rtts[i]) / float64(time.Millisecond)}
		for _, ev := range rec.Trace().Events {
			row.Events = append(row.Events, Fig4Event{
				AtMS:    float64(ev.Time-starts[i]) / float64(time.Millisecond),
				Send:    ev.Dir == tcpsim.DirSend,
				Payload: len(ev.Seg.Data),
				Flags:   ev.Seg.Flags.String(),
			})
		}
		rows[i] = row
	}
	return rows, nil
}

// CaptureSession runs one query from a client at the given RTT against
// a Bing-like FE and returns the client's packet trace — the library's
// "tcpdump one session" facility, usable with capture.Decode tooling.
func (s *Study) CaptureSession(rtt time.Duration) (*Trace, error) {
	sim := simnet.New(s.cfg.Seed + 35)
	net := simnet.NewNetwork(sim)
	if s.rt != nil {
		sim.SetRuntime(s.rt)
		net.SetRuntime(s.rt)
	}
	spec := workload.DefaultContentSpec("bing-like")
	if _, err := backend.New(net, "be", geo.Site{Name: "be"}, spec,
		backend.BingCostModel(), backend.Options{}, s.cfg.Seed+36); err != nil {
		return nil, err
	}
	fe, err := frontend.New(net, frontend.Config{
		Host: "fe", BEHost: "be", Static: spec.StaticPrefix(),
		Load: frontend.SharedCDNLoadModel(), Seed: s.cfg.Seed + 37,
	})
	if err != nil {
		return nil, err
	}
	net.SetLink("fe", "be", simnet.PathParams{Delay: 12 * time.Millisecond})
	fe.Prewarm(1)
	sim.RunFor(time.Second)
	net.SetLink("client", "fe", simnet.PathParams{Delay: rtt / 2})
	ep := tcpsim.NewEndpoint(net, "client", tcpsim.Config{})
	rec := capture.NewRecorder("client")
	ep.Tap = rec.Tap
	gen := workload.NewGenerator(s.cfg.Seed + 38)
	q := gen.Query(workload.ClassGranular)
	httpsim.Get(ep, "fe", frontend.FEPort, httpsim.NewGet("bing-like", q.Path()),
		httpsim.ResponseCallbacks{})
	sim.Run()
	return rec.Trace(), nil
}

// --- Figure 5 ---

// Fig5Data holds the fixed-FE per-node parameter distributions for one
// service, plus the Tdelta threshold and the inference-bounds check
// against ground truth.
type Fig5Data struct {
	Service     string
	FixedFE     string
	Nodes       []NodeSummary
	ThresholdMS float64
	HasThresh   bool
	// Inference validation (simulation-only ground truth).
	BoundLoMS, TruthMS, BoundHiMS float64
	BoundsOK                      bool
}

// Fig5 reproduces Figure 5 for both services: Tstatic, Tdynamic and
// Tdelta versus RTT with one fixed FE per service.
func (s *Study) Fig5() ([]*Fig5Data, error) {
	var out []*Fig5Data
	for _, cfg := range s.serviceConfigs() {
		d, err := s.fig5For(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// fig5For runs the fixed-FE campaign for one service — the per-service
// cell of Figure 5, shared by the serial method and the parallel cell
// matrix.
func (s *Study) fig5For(cfg DeploymentConfig) (*Fig5Data, error) {
	boundary, err := s.boundaryFor(cfg)
	if err != nil {
		return nil, err
	}
	// The fixed-FE campaign is the study's largest (250 × 720
	// sessions at paper scale): snap payloads at capture time so
	// it fits in memory. The boundary probe above already ran
	// with full payloads.
	runner, err := emulator.New(s.cfg.Seed+41, cfg, emulator.Options{
		Nodes: s.cfg.Nodes, FleetSeed: s.cfg.Seed + 42, SnapPayloads: true,
		Runtime: s.rt,
	})
	if err != nil {
		return nil, err
	}
	fe := runner.Dep.FEByHost(simnet.HostID(cfg.Name + "-fe-metro-chicago"))
	if fe == nil {
		fe = runner.Dep.FEs[0]
	}
	ds, err := runner.RunExperimentB(emulator.BOptions{
		FE: fe, Repeats: s.cfg.RepeatsB, Interval: s.cfg.IntervalB,
		QuerySeed: s.cfg.Seed + 43,
	})
	if err != nil {
		return nil, err
	}
	params := analysis.ExtractDataset(ds, boundary)
	analysis.ObserveParams(s.obsv.Registry(), "fig5/"+cfg.Name, params)
	nodes := analysis.PerNode(params)
	thr, hasThr := analysis.DeltaThreshold(nodes, 2*time.Millisecond)
	lo, truth, hi, ok := analysis.ValidateBounds(params, ds.FEFetchTimes[fe.Host()])
	return &Fig5Data{
		Service:     cfg.Name,
		FixedFE:     string(fe.Host()),
		Nodes:       nodes,
		ThresholdMS: float64(thr) / float64(time.Millisecond),
		HasThresh:   hasThr,
		BoundLoMS:   lo, TruthMS: truth, BoundHiMS: hi, BoundsOK: ok,
	}, nil
}

// --- Figure 6 ---

// Fig6Data is the RTT CDF of nodes to their default FE for one service.
type Fig6Data struct {
	Service string
	// RTTsMS are the per-node median RTTs.
	RTTsMS []float64
	// FracUnder20ms is the paper's headline comparison point.
	FracUnder20ms float64
}

// Fig6 reproduces Figure 6: the CDF of client→default-FE RTTs for both
// services.
func (s *Study) Fig6() ([]*Fig6Data, error) {
	var out []*Fig6Data
	for _, cfg := range s.serviceConfigs() {
		res, err := s.experimentA(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, fig6From(cfg, res))
	}
	return out, nil
}

// fig6From derives the Figure-6 series from a service's default-FE
// campaign — a pure transform shared by Fig6 and the cell matrix.
func fig6From(cfg DeploymentConfig, res *expAResult) *Fig6Data {
	var rtts []float64
	for _, n := range res.nodes {
		rtts = append(rtts, float64(n.RTT)/float64(time.Millisecond))
	}
	cdf := stats.NewECDF(rtts)
	return &Fig6Data{
		Service:       cfg.Name,
		RTTsMS:        rtts,
		FracUnder20ms: cdf.At(20),
	}
}

// --- Figure 7 ---

// Fig7Data holds default-FE Tstatic/Tdynamic distributions per node.
type Fig7Data struct {
	Service string
	Nodes   []NodeSummary
	// Medians and spread across nodes (ms) for the service-level
	// comparison.
	MedStaticMS, MedDynamicMS float64
	IQRStaticMS, IQRDynMS     float64
}

// Fig7 reproduces Figure 7: Tstatic and Tdynamic versus RTT with each
// node using its default FE, for both services.
func (s *Study) Fig7() ([]*Fig7Data, error) {
	var out []*Fig7Data
	for _, cfg := range s.serviceConfigs() {
		res, err := s.experimentA(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, fig7From(cfg, res))
	}
	return out, nil
}

// fig7From derives the Figure-7 distributions from a service's
// default-FE campaign.
func fig7From(cfg DeploymentConfig, res *expAResult) *Fig7Data {
	var st, dy []float64
	for _, n := range res.nodes {
		st = append(st, float64(n.MedStatic)/float64(time.Millisecond))
		dy = append(dy, float64(n.MedDynamic)/float64(time.Millisecond))
	}
	sSum, dSum := stats.Summarize(st), stats.Summarize(dy)
	return &Fig7Data{
		Service:      cfg.Name,
		Nodes:        res.nodes,
		MedStaticMS:  sSum.Median,
		MedDynamicMS: dSum.Median,
		IQRStaticMS:  sSum.IQR(),
		IQRDynMS:     dSum.IQR(),
	}
}

// --- Figure 8 ---

// Fig8Data holds per-node overall-delay box plots for one service.
type Fig8Data struct {
	Service string
	Nodes   []string
	Boxes   []BoxPlot
	// MedOverallMS is the service-level median of node medians.
	MedOverallMS float64
	// SpreadMS is the median node IQR — the variability comparison.
	SpreadMS float64
}

// Fig8 reproduces Figure 8: per-node box plots of the overall
// user-perceived delay for both services.
func (s *Study) Fig8() ([]*Fig8Data, error) {
	var out []*Fig8Data
	for _, cfg := range s.serviceConfigs() {
		res, err := s.experimentA(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, fig8From(cfg, res))
	}
	return out, nil
}

// fig8From derives the Figure-8 box plots from a service's default-FE
// campaign.
func fig8From(cfg DeploymentConfig, res *expAResult) *Fig8Data {
	d := &Fig8Data{Service: cfg.Name}
	var meds, iqrs []float64
	for _, n := range res.nodes {
		d.Nodes = append(d.Nodes, string(n.Node))
		bp := n.OverallDist
		// Convert to milliseconds for reporting.
		d.Boxes = append(d.Boxes, BoxPlot{
			Min: bp.Min / 1e6, Q1: bp.Q1 / 1e6, Median: bp.Median / 1e6,
			Q3: bp.Q3 / 1e6, Max: bp.Max / 1e6,
			WhiskerLow: bp.WhiskerLow / 1e6, WhiskerHigh: bp.WhiskerHigh / 1e6,
		})
		meds = append(meds, bp.Median/1e6)
		iqrs = append(iqrs, (bp.Q3-bp.Q1)/1e6)
	}
	d.MedOverallMS = stats.Median(meds)
	d.SpreadMS = stats.Median(iqrs)
	return d
}

// --- Figure 9 ---

// Fig9Data is the fetch-time factoring for one service.
type Fig9Data struct {
	Service string
	BE      string
	Result  FactorResult
}

// Fig9 reproduces Figure 9: regress Tdynamic (≈ Tfetch at small RTT)
// against FE↔BE distance for a single data center per service — Bing
// Virginia and Google Lenoir, as in the paper.
func (s *Study) Fig9() ([]*Fig9Data, error) {
	// The paper picks one data center per service and "consider[s] the
	// geographically closest FE servers" to it. The Google-like fleet
	// used elsewhere is deliberately sparse (Figure-6 calibration),
	// which would leave this regression only ~3 points; the real 2011
	// Google ran far more FE sites than our sparse 5, so the Fig-9
	// probe densifies the google-like FE placement to every US metro.
	// Placement density does not change what each FE measures — its
	// own distance to the data center versus its local clients'
	// Tdynamic — it only adds regression points.
	var out []*Fig9Data
	for _, setup := range s.fig9Setups() {
		d, err := s.fig9For(setup)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// fig9Setup is one Figure-9 probe: a single-BE deployment and its data
// center.
type fig9Setup struct {
	cfg DeploymentConfig
	be  string
}

// fig9Setups returns the two single-data-center probes in canonical
// order: Bing Virginia, then the FE-densified Google Lenoir.
func (s *Study) fig9Setups() []fig9Setup {
	googleProbe := cdn.SingleBE(GoogleLike(s.cfg.Seed+2), "google-be-lenoir")
	googleProbe.FESites = geo.USMetros()
	return []fig9Setup{
		{cdn.SingleBE(BingLike(s.cfg.Seed+1), "bing-be-virginia"), "bing-be-virginia"},
		{googleProbe, "google-be-lenoir"},
	}
}

// fig9For runs one service's fetch-time factoring — the per-service
// cell of Figure 9.
func (s *Study) fig9For(setup fig9Setup) (*Fig9Data, error) {
	runner, err := emulator.New(s.cfg.Seed+51, setup.cfg,
		emulator.Options{Nodes: s.cfg.Nodes, FleetSeed: s.cfg.Seed + 52, Runtime: s.rt})
	if err != nil {
		return nil, err
	}
	ds := runner.RunExperimentA(emulator.AOptions{
		QueriesPerNode: s.cfg.QueriesPerNodeA,
		Interval:       s.cfg.IntervalA,
		QuerySeed:      s.cfg.Seed + 53,
	})
	params := analysis.ExtractDataset(ds, 0)
	analysis.ObserveParams(s.obsv.Registry(), "fig9/"+setup.cfg.Name, params)
	pts := analysis.Fig9Points(params, runner.Dep.FEBEDistances(), s.cfg.Fig9RTTCap)
	if s.cfg.Fig9MileCap > 0 {
		kept := pts[:0]
		for _, p := range pts {
			if p.Miles <= s.cfg.Fig9MileCap {
				kept = append(kept, p)
			}
		}
		pts = kept
	}
	return &Fig9Data{
		Service: setup.cfg.Name,
		BE:      setup.be,
		Result:  analysis.FactorFetchCI(pts, 1000, s.cfg.Seed+54),
	}, nil
}

// --- Section 3: caching detection ---

// CachingData is the caching-probe outcome with its positive control.
type CachingData struct {
	Service string
	// Deployed is the verdict on the deployed (cache-less) service —
	// the paper finds no caching.
	Deployed CacheVerdict
	// Control is the verdict with a result cache deliberately enabled,
	// demonstrating the methodology detects one when present.
	Control CacheVerdict
}

// Caching reproduces the Section-3 experiment on the Google-like
// service, plus a cache-enabled positive control.
func (s *Study) Caching() (*CachingData, error) {
	deployed, err := s.cachingRun(false)
	if err != nil {
		return nil, err
	}
	control, err := s.cachingRun(true)
	if err != nil {
		return nil, err
	}
	return &CachingData{Service: "google-like", Deployed: deployed, Control: control}, nil
}

// cachingRun executes one caching-probe variant — deployed (cache off)
// or positive control (cache on). The two variants are independent
// worlds, which is what lets the cell matrix run them concurrently.
func (s *Study) cachingRun(cache bool) (CacheVerdict, error) {
	cfg := GoogleLike(s.cfg.Seed + 2)
	if cache {
		cfg.BEOptions = backend.Options{CacheResults: true, CacheHitTime: 2 * time.Millisecond}
	}
	runner, err := emulator.New(s.cfg.Seed+61, cfg,
		emulator.Options{Nodes: min(s.cfg.Nodes, 40), FleetSeed: s.cfg.Seed + 62, Runtime: s.rt})
	if err != nil {
		return CacheVerdict{}, err
	}
	fe := runner.Dep.FEs[0]
	same, distinct := runner.CachingProbe(fe, s.cfg.CachingRepeats,
		2*time.Second, s.cfg.Seed+63)
	boundary := analysis.BoundaryFromDataset(distinct)
	if boundary <= 0 {
		return CacheVerdict{}, fmt.Errorf("fesplit: caching probe boundary not found")
	}
	nearOnly := func(ps []Params) []Params {
		out := ps[:0:0]
		for _, p := range ps {
			if p.RTT <= 25*time.Millisecond {
				out = append(out, p)
			}
		}
		return out
	}
	sp := nearOnly(analysis.ExtractDataset(same, boundary))
	dp := nearOnly(analysis.ExtractDataset(distinct, boundary))
	if len(sp) == 0 || len(dp) == 0 {
		return CacheVerdict{}, fmt.Errorf("fesplit: caching probe found no near sessions")
	}
	return analysis.DetectCaching(sp, dp, 0.5), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
