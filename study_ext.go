package fesplit

import (
	"fmt"
	"math"
	"time"

	"fesplit/internal/analysis"
	"fesplit/internal/core"
	"fesplit/internal/emulator"
	"fesplit/internal/stats"
	"fesplit/internal/vantage"
	"fesplit/internal/workload"
)

// Extensions beyond the paper's numbered figures: the reviewer-requested
// term-count correlation, the Section-6 interactive "search as you
// type" probe, and the Discussion-section wireless last-mile what-if.

// TermEffectData is the query-complexity correlation for one service.
type TermEffectData struct {
	Service string
	Points  []analysis.TermPoint
	// SlopeMSPerTerm is the fitted per-term fetch cost.
	SlopeMSPerTerm float64
	R2             float64
}

// TermEffect measures how Tdynamic correlates with the number of terms
// in the query (reviewer #2's question) on both services, using
// small-RTT sessions against each service's default FEs with a
// mixed-complexity corpus.
func (s *Study) TermEffect() ([]*TermEffectData, error) {
	var out []*TermEffectData
	for _, cfg := range s.serviceConfigs() {
		d, err := s.termEffectFor(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// termEffectFor runs the term-count correlation for one service — the
// per-service cell shared by TermEffect and the parallel cell matrix.
func (s *Study) termEffectFor(cfg DeploymentConfig) (*TermEffectData, error) {
	boundary, err := s.boundaryFor(cfg)
	if err != nil {
		return nil, err
	}
	runner, err := emulator.New(s.cfg.Seed+81, cfg,
		emulator.Options{Nodes: min(s.cfg.Nodes, 60), FleetSeed: s.cfg.Seed + 82})
	if err != nil {
		return nil, err
	}
	// Mixed-complexity corpus: every class contributes.
	gen := workload.NewGenerator(s.cfg.Seed + 83)
	var queries []workload.Query
	for i := 0; i < s.cfg.QueriesPerNodeA; i++ {
		queries = append(queries, gen.Query(workload.Classes()[i%4]))
	}
	ds := runner.RunExperimentA(emulator.AOptions{
		QueriesPerNode: len(queries),
		Interval:       s.cfg.IntervalA,
		Queries:        queries,
	})
	params := analysis.ExtractDataset(ds, boundary)
	analysis.ObserveParams(s.obsv.Registry(), "term/"+cfg.Name, params)
	pts, fit := analysis.TermEffect(params, 40*time.Millisecond)
	return &TermEffectData{
		Service:        cfg.Name,
		Points:         pts,
		SlopeMSPerTerm: fit.Slope,
		R2:             fit.R2,
	}, nil
}

// InteractiveData summarizes the Section-6 search-as-you-type probe.
type InteractiveData struct {
	Service    string
	Keywords   string
	Keystrokes int
	// One TCP connection per keystroke, as the paper observes.
	Connections int
	// PerKeystroke Tdynamic values (ms), in typing order.
	PerKeystrokeTdynMS []float64
	// ModelHolds reports that every keystroke session parsed under the
	// basic split-TCP model (the paper's claim).
	ModelHolds bool
}

// Interactive reproduces the Section-6 probe on the Google-like service
// (the paper names Google's "search as you type").
func (s *Study) Interactive(keywords string) (*InteractiveData, error) {
	cfg := GoogleLike(s.cfg.Seed + 2)
	boundary, err := s.boundaryFor(cfg)
	if err != nil {
		return nil, err
	}
	runner, err := emulator.New(s.cfg.Seed+85, cfg,
		emulator.Options{Nodes: 6, FleetSeed: s.cfg.Seed + 86})
	if err != nil {
		return nil, err
	}
	fe := runner.Dep.FEs[0]
	node := runner.NearestNode(fe)
	ds := runner.Interactive(fe, node, keywords, 400*time.Millisecond)

	data := &InteractiveData{
		Service:    cfg.Name,
		Keywords:   keywords,
		Keystrokes: len(ds.Records),
		ModelHolds: true,
	}
	conns := map[uint16]bool{}
	for _, rec := range ds.Records {
		conns[rec.Key.LocalPort] = true
		p, err := analysis.ExtractRecord(rec, boundary)
		if err != nil {
			data.ModelHolds = false
			continue
		}
		data.PerKeystrokeTdynMS = append(data.PerKeystrokeTdynMS,
			float64(p.Tdynamic)/float64(time.Millisecond))
	}
	data.Connections = len(conns)
	return data, nil
}

// ModelValidationData quantifies how well the paper's analytic model
// predicts the measured per-node parameters.
type ModelValidationData struct {
	Service string
	Nodes   int
	// Median absolute prediction error (ms) for Tdynamic and Tdelta
	// across nodes, using each node's RTT, the service's median
	// ground-truth fetch and the known content sizes as model inputs.
	MedAbsErrTdynMS  float64
	MedAbsErrDeltaMS float64
	// Within10ms is the fraction of nodes whose Tdynamic prediction
	// lands within 10 ms of the measurement.
	Within10ms float64
}

// ModelValidation runs the fixed-FE experiment on the Google-like
// service and compares every node's measured (Tdynamic, Tdelta) medians
// against the analytic model's predictions — the "correctness of the
// model is validated" step, quantified.
func (s *Study) ModelValidation() (*ModelValidationData, error) {
	cfg := GoogleLike(s.cfg.Seed + 2)
	boundary, err := s.boundaryFor(cfg)
	if err != nil {
		return nil, err
	}
	runner, err := emulator.New(s.cfg.Seed+91, cfg,
		emulator.Options{Nodes: min(s.cfg.Nodes, 60), FleetSeed: s.cfg.Seed + 92})
	if err != nil {
		return nil, err
	}
	fe := runner.Dep.FEs[0]
	ds, err := runner.RunExperimentB(emulator.BOptions{
		FE: fe, Repeats: max(s.cfg.RepeatsB/20, 6), Interval: s.cfg.IntervalB,
		QuerySeed: s.cfg.Seed + 93,
	})
	if err != nil {
		return nil, err
	}
	params := analysis.ExtractDataset(ds, boundary)
	nodes := analysis.PerNode(params)

	// Model inputs shared across nodes: the service's median fetch
	// (ground truth) and FE delay, and the content sizes.
	var fetchNS []float64
	for _, f := range ds.FEFetchTimes[fe.Host()] {
		fetchNS = append(fetchNS, float64(f))
	}
	medFetch := time.Duration(stats.Median(fetchNS))
	feDelay := cfg.FELoad.Mean
	staticBytes := boundary
	dynBytes := cfg.Spec.DynamicBase + cfg.Spec.DynamicPerTerm*4

	var errDyn, errDelta []float64
	within := 0
	for _, n := range nodes {
		pred, err := core.Predict(core.Inputs{
			RTT:          n.RTT,
			FEDelay:      feDelay,
			Fetch:        medFetch,
			StaticBytes:  staticBytes,
			DynamicBytes: dynBytes,
		})
		if err != nil {
			return nil, err
		}
		eDyn := math.Abs(float64(pred.Tdynamic()-n.MedDynamic)) / 1e6
		eDelta := math.Abs(float64(pred.Tdelta()-n.MedDelta)) / 1e6
		errDyn = append(errDyn, eDyn)
		errDelta = append(errDelta, eDelta)
		if eDyn <= 10 {
			within++
		}
	}
	return &ModelValidationData{
		Service:          cfg.Name,
		Nodes:            len(nodes),
		MedAbsErrTdynMS:  stats.Median(errDyn),
		MedAbsErrDeltaMS: stats.Median(errDelta),
		Within10ms:       float64(within) / float64(len(nodes)),
	}, nil
}

// WirelessData compares campus and wireless last miles.
type WirelessData struct {
	Service string
	// Medians of per-node median overall delay (ms).
	CampusOverallMS   float64
	WirelessOverallMS float64
	// Retransmission totals observed client-side.
	CampusRetrans   int
	WirelessRetrans int
}

// Wireless runs the Discussion-section what-if: the same fleet and
// workload over a campus wired profile versus a lossy higher-latency
// wireless profile, on the Google-like service. Placing FEs close to
// users matters far more when the last hop loses packets.
func (s *Study) Wireless() (*WirelessData, error) {
	campus, err := s.wirelessRun(vantage.CampusProfile())
	if err != nil {
		return nil, err
	}
	wireless, err := s.wirelessRun(vantage.WirelessProfile())
	if err != nil {
		return nil, err
	}
	return combineWireless(campus, wireless)
}

// wirelessLeg is one access-profile run of the wireless what-if.
type wirelessLeg struct {
	OverallMS float64
	Retrans   int
}

// namedProfile pairs an access profile with its cell-matrix label.
type namedProfile struct {
	name    string
	profile vantage.AccessProfile
}

// wirelessProfiles returns the what-if's two access profiles in
// canonical order: campus first, wireless second.
func wirelessProfiles() []namedProfile {
	return []namedProfile{
		{"campus", vantage.CampusProfile()},
		{"wireless", vantage.WirelessProfile()},
	}
}

// wirelessRun executes the what-if campaign under one access profile —
// the per-profile cell shared by Wireless and the parallel cell matrix.
func (s *Study) wirelessRun(profile vantage.AccessProfile) (wirelessLeg, error) {
	cfg := GoogleLike(s.cfg.Seed + 2)
	boundary, err := s.boundaryFor(cfg)
	if err != nil {
		return wirelessLeg{}, err
	}
	runner, err := emulator.New(s.cfg.Seed+87, cfg, emulator.Options{
		Nodes: min(s.cfg.Nodes, 60), FleetSeed: s.cfg.Seed + 88, Access: profile,
	})
	if err != nil {
		return wirelessLeg{}, err
	}
	ds := runner.RunExperimentA(emulator.AOptions{
		QueriesPerNode: s.cfg.QueriesPerNodeA,
		Interval:       s.cfg.IntervalA,
		QuerySeed:      s.cfg.Seed + 89,
	})
	params := analysis.ExtractDataset(ds, boundary)
	nodes := analysis.PerNode(params)
	var meds []float64
	for _, n := range nodes {
		meds = append(meds, float64(n.MedOverall)/float64(time.Millisecond))
	}
	// Count retransmissions from the captured traces.
	retrans := 0
	for _, tr := range ds.Traces {
		for _, ev := range tr.Events {
			if ev.Seg.Retrans {
				retrans++
			}
		}
	}
	return wirelessLeg{OverallMS: stats.Median(meds), Retrans: retrans}, nil
}

// combineWireless joins the two access-profile legs into the what-if
// verdict, flagging the anomaly where wireless fails to be slower.
func combineWireless(campus, wireless wirelessLeg) (*WirelessData, error) {
	if wireless.OverallMS <= campus.OverallMS {
		// Not an error, but flag the anomaly for the caller.
		return nil, fmt.Errorf("fesplit: wireless (%f ms) not slower than campus (%f ms)",
			wireless.OverallMS, campus.OverallMS)
	}
	return &WirelessData{
		Service:           "google-like",
		CampusOverallMS:   campus.OverallMS,
		WirelessOverallMS: wireless.OverallMS,
		CampusRetrans:     campus.Retrans,
		WirelessRetrans:   wireless.Retrans,
	}, nil
}
