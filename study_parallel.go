package fesplit

import (
	"fmt"

	"fesplit/internal/obs"
	"fesplit/internal/shard"
)

// This file is the parallel study runner: RunAll (and its observed
// variant) decompose the study into a fixed matrix of independent
// cells — (service × figure experiment) at this level, with the
// default-FE campaign further split into node batches inside its cells
// (see emulator.RunShardedA) — and execute the matrix on
// StudyConfig.Workers goroutines via internal/shard.
//
// The reproducibility contract: the cell matrix, every seed, and the
// merge order are pure functions of StudyConfig; Workers only schedules
// the cells. Two runs of the same config therefore produce
// byte-identical figures, metrics dumps and reports for ANY worker
// counts — the property study_parallel_test.go pins down.
//
// Each cell runs on its own sub-Study: its own memoization caches, its
// own observer, its own simulated worlds. Cells share nothing mutable,
// which is what makes the matrix race-free without a single lock; the
// cheap shared derivations (content boundaries) are recomputed per cell
// and are identical by determinism. Results merge in canonical cell
// order after the pool drains: figure slices by service order,
// registries via obs.Registry.Merge, tail exemplars re-ranked across
// the union via obs.MergeTailSamplers.

// StudyOutput is everything an observed study run produces: the report,
// the merged metrics of every cell, and the fleet-wide tail exemplars.
type StudyOutput struct {
	// Report holds every figure, exactly as RunAll returns it.
	Report *Report
	// Metrics is the canonical-order merge of all per-cell registries:
	// simulator/TCP/FE/BE counters from the observed campaigns, the
	// dimensional session-parameter sketches (service-labeled for the
	// default-FE campaign, "fig5/"-, "fig9/"- and "term/"-prefixed for
	// the other param-bearing cells), and study_cell_runs_total.
	Metrics *MetricsRegistry
	// Exemplars are the tail-latency and bound-violation span trees of
	// the default-FE campaigns, re-ranked against the merged fleet-wide
	// Tdynamic distribution after the shard join.
	Exemplars []Exemplar
}

// Spans returns the exemplars' span trees as a tracer, ready for
// WriteChromeTrace and WriteSpansJSONL.
func (o *StudyOutput) Spans() *SpanTracer {
	tr := obs.NewTracer()
	for _, e := range o.Exemplars {
		tr.Add(e.Span)
	}
	return tr
}

// cellResults is the pre-allocated result slot set of the cell matrix.
// Every cell writes only its own field (or array element), so the
// struct needs no synchronization beyond the pool's completion barrier.
type cellResults struct {
	fig3        *Fig3Data
	fig4        []Fig4Row
	fig5        [2]*Fig5Data
	fig6        [2]*Fig6Data
	fig7        [2]*Fig7Data
	fig8        [2]*Fig8Data
	fig9        [2]*Fig9Data
	caching     [2]CacheVerdict // deployed, control
	term        [2]*TermEffectData
	interactive *InteractiveData
	modelCheck  *ModelValidationData
	wireless    [2]wirelessLeg // campus, wireless
	overload    *OverloadData
	hotspot     *HotspotData
	failover    *FailoverData
	capacity    *CapacityData
}

// studyCell is one independent unit of the study matrix.
type studyCell struct {
	name string
	run  func(cs *Study, res *cellResults) error
}

// cells returns the study's cell matrix in canonical order. The list —
// like everything else in the decomposition — depends only on the
// configuration, never on the worker count.
func (s *Study) cells() []studyCell {
	svcs := s.serviceConfigs()
	list := []studyCell{
		{"fig3", func(cs *Study, res *cellResults) (err error) {
			res.fig3, err = cs.Fig3()
			return
		}},
		{"fig4", func(cs *Study, res *cellResults) (err error) {
			res.fig4, err = cs.Fig4()
			return
		}},
	}
	for i, cfg := range svcs {
		i, cfg := i, cfg
		list = append(list, studyCell{"fig5/" + cfg.Name, func(cs *Study, res *cellResults) (err error) {
			res.fig5[i], err = cs.fig5For(cfg)
			return
		}})
	}
	for i, cfg := range svcs {
		i, cfg := i, cfg
		list = append(list, studyCell{"figA/" + cfg.Name, func(cs *Study, res *cellResults) error {
			expA, err := cs.experimentA(cfg)
			if err != nil {
				return err
			}
			res.fig6[i] = fig6From(cfg, expA)
			res.fig7[i] = fig7From(cfg, expA)
			res.fig8[i] = fig8From(cfg, expA)
			return nil
		}})
	}
	for i, setup := range s.fig9Setups() {
		i, setup := i, setup
		list = append(list, studyCell{"fig9/" + setup.cfg.Name, func(cs *Study, res *cellResults) (err error) {
			res.fig9[i], err = cs.fig9For(setup)
			return
		}})
	}
	for i, variant := range []struct {
		name  string
		cache bool
	}{{"caching/deployed", false}, {"caching/control", true}} {
		i, variant := i, variant
		list = append(list, studyCell{variant.name, func(cs *Study, res *cellResults) (err error) {
			res.caching[i], err = cs.cachingRun(variant.cache)
			return
		}})
	}
	for i, cfg := range svcs {
		i, cfg := i, cfg
		list = append(list, studyCell{"term-effect/" + cfg.Name, func(cs *Study, res *cellResults) (err error) {
			res.term[i], err = cs.termEffectFor(cfg)
			return
		}})
	}
	list = append(list,
		studyCell{"interactive", func(cs *Study, res *cellResults) (err error) {
			res.interactive, err = cs.Interactive("cloud computing performance")
			return
		}},
		studyCell{"model-validation", func(cs *Study, res *cellResults) (err error) {
			res.modelCheck, err = cs.ModelValidation()
			return
		}},
	)
	for i, profile := range wirelessProfiles() {
		i, profile := i, profile
		list = append(list, studyCell{"wireless/" + profile.name, func(cs *Study, res *cellResults) (err error) {
			res.wireless[i], err = cs.wirelessRun(profile.profile)
			return
		}})
	}
	list = append(list,
		studyCell{"queue/overload", func(cs *Study, res *cellResults) (err error) {
			res.overload, err = cs.Overload()
			return
		}},
		studyCell{"queue/hotspot", func(cs *Study, res *cellResults) (err error) {
			res.hotspot, err = cs.Hotspot()
			return
		}},
		studyCell{"queue/failover", func(cs *Study, res *cellResults) (err error) {
			res.failover, err = cs.Failover()
			return
		}},
		studyCell{"queue/capacity", func(cs *Study, res *cellResults) (err error) {
			res.capacity, err = cs.Capacity()
			return
		}},
	)
	return list
}

// RunAll executes every experiment of the study — on
// StudyConfig.Workers goroutines — and returns the full report.
func (s *Study) RunAll() (*Report, error) {
	out, err := s.runMatrix(false)
	if err != nil {
		return nil, err
	}
	return out.Report, nil
}

// RunAllObserved is RunAll with per-cell observability: each cell
// records into its own registry and tail sampler, and the shards merge
// in canonical cell order into one registry and one re-ranked exemplar
// set. The Report is identical to RunAll's — observation never
// perturbs the simulations.
func (s *Study) RunAllObserved() (*StudyOutput, error) {
	return s.runMatrix(true)
}

// runMatrix runs the cell matrix and merges the results.
func (s *Study) runMatrix(observed bool) (*StudyOutput, error) {
	if s.cfg.Workers < 0 {
		return nil, fmt.Errorf("fesplit: StudyConfig.Workers must be ≥ 1 (or 0 for auto), got %d",
			s.cfg.Workers)
	}
	cells := s.cells()
	res := &cellResults{}
	obsvs := make([]*obs.Observer, len(cells))
	tasks := make([]shard.Task, len(cells))
	for i, c := range cells {
		i, c := i, c
		tasks[i] = shard.Task{Name: c.name, Run: func() error {
			cs := NewStudy(s.cfg)
			cs.rt = s.rt // shared telemetry hub — atomic, pure observation
			if observed {
				cs.obsv = obs.NewTailObserver(obs.TailConfig{})
				obsvs[i] = cs.obsv
				cs.obsv.Reg.CounterVec("study_cell_runs_total",
					"study cells executed, by cell name", "cell").With(c.name).Inc()
			}
			return c.run(cs, res)
		}}
	}
	var progress shard.Progress
	if s.rt != nil {
		s.rt.AddTasks(len(tasks))
		progress = s.rt
	}
	if err := shard.RunProgress(s.cfg.Workers, tasks, progress); err != nil {
		return nil, err
	}

	rep := &Report{
		Config:      s.cfg,
		Fig3:        res.fig3,
		Fig4:        res.fig4,
		Fig5:        res.fig5[:],
		Fig6:        res.fig6[:],
		Fig7:        res.fig7[:],
		Fig8:        res.fig8[:],
		Fig9:        res.fig9[:],
		Caching:     &CachingData{Service: "google-like", Deployed: res.caching[0], Control: res.caching[1]},
		TermEffect:  res.term[:],
		Interactive: res.interactive,
		ModelCheck:  res.modelCheck,
		Overload:    res.overload,
		Hotspot:     res.hotspot,
		Failover:    res.failover,
		Capacity:    res.capacity,
	}
	wireless, err := combineWireless(res.wireless[0], res.wireless[1])
	if err != nil {
		return nil, fmt.Errorf("wireless: %w", err)
	}
	rep.Wireless = wireless
	out := &StudyOutput{Report: rep}
	if !observed {
		return out, nil
	}

	merged := obs.NewRegistry()
	samplers := make([]*obs.TailSampler, 0, len(obsvs))
	for i, o := range obsvs {
		if o == nil {
			continue
		}
		if err := merged.Merge(o.Reg); err != nil {
			return nil, fmt.Errorf("%s: %w", cells[i].name, err)
		}
		samplers = append(samplers, o.Tail)
	}
	out.Metrics = merged
	out.Exemplars = obs.MergeTailSamplers(samplers...).Select()
	return out, nil
}
