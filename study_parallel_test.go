package fesplit

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// exportAll renders every artifact of an observed study run into named
// byte blobs: the metrics dumps, the span export, both report formats
// and all figure CSVs. Byte equality of this map is the strongest
// equivalence the exporters can express.
func exportAll(t *testing.T, out *StudyOutput) map[string][]byte {
	t.Helper()
	blobs := map[string][]byte{}
	put := func(name string, write func(w *bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		blobs[name] = buf.Bytes()
	}
	put("metrics.jsonl", func(w *bytes.Buffer) error { return WriteMetricsJSONL(w, out.Metrics) })
	put("metrics.prom", func(w *bytes.Buffer) error { return WritePrometheus(w, out.Metrics) })
	put("spans.jsonl", func(w *bytes.Buffer) error { return WriteSpansJSONL(w, out.Spans()) })
	put("report.txt", func(w *bytes.Buffer) error { return out.Report.WriteText(w) })
	put("report.html", func(w *bytes.Buffer) error {
		return out.Report.WriteHTML(w, out.Metrics, out.Exemplars)
	})
	dir := t.TempDir()
	if err := out.Report.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		blobs[filepath.Base(name)] = b
	}
	return blobs
}

// TestParallelSerialEquivalence is the PR's headline property: the full
// observed study produces byte-identical artifacts — metrics JSONL,
// Prometheus text, span JSONL, figure CSVs, text and HTML reports —
// whether it runs on one worker or many. Workers schedule; they never
// decide.
func TestParallelSerialEquivalence(t *testing.T) {
	seeds := []int64{3, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		run := func(workers int) map[string][]byte {
			cfg := LightStudyConfig(seed)
			cfg.Workers = workers
			out, err := NewStudy(cfg).RunAllObserved()
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			return exportAll(t, out)
		}
		serial, parallel := run(1), run(4)
		if len(serial) != len(parallel) {
			t.Fatalf("seed %d: artifact sets differ: %d vs %d", seed, len(serial), len(parallel))
		}
		for name, want := range serial {
			got, ok := parallel[name]
			if !ok {
				t.Errorf("seed %d: parallel run missing %s", seed, name)
				continue
			}
			if !bytes.Equal(want, got) {
				t.Errorf("seed %d: %s differs between workers=1 and workers=4 (%d vs %d bytes)",
					seed, name, len(want), len(got))
			}
		}
		if len(serial["metrics.jsonl"]) == 0 || len(serial["fig7.csv"]) == 0 {
			t.Fatalf("seed %d: equivalence vacuous — empty artifacts", seed)
		}
	}
}

// TestSerialMethodsMatchRunAll pins the other face of equivalence: the
// public per-figure methods (the serial API) return exactly what the
// parallel matrix assembled, because both sides call the same per-cell
// helpers with the same seeds.
func TestSerialMethodsMatchRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate simulation campaigns in -short mode")
	}
	cfg := LightStudyConfig(5)
	cfg.Workers = 2
	rep, err := NewStudy(cfg).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	serial := NewStudy(cfg)
	caching, err := serial.Caching()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(caching, rep.Caching) {
		t.Errorf("Caching() diverges from RunAll: %+v vs %+v", caching, rep.Caching)
	}
	term, err := serial.TermEffect()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(term, rep.TermEffect) {
		t.Errorf("TermEffect() diverges from RunAll")
	}
	fig9, err := serial.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig9, rep.Fig9) {
		t.Errorf("Fig9() diverges from RunAll")
	}
}

func TestRunAllRejectsNegativeWorkers(t *testing.T) {
	cfg := LightStudyConfig(1)
	cfg.Workers = -1
	_, err := NewStudy(cfg).RunAll()
	if err == nil {
		t.Fatal("Workers=-1 accepted")
	}
	if !strings.Contains(err.Error(), "Workers") {
		t.Errorf("error %q does not mention Workers", err)
	}
	if _, err := NewStudy(cfg).RunAllObserved(); err == nil {
		t.Fatal("Workers=-1 accepted by RunAllObserved")
	}
}

// TestObservationDoesNotPerturbReport: RunAllObserved must hand back
// the same report RunAll does — observation is read-only.
func TestObservationDoesNotPerturbReport(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate study run in -short mode")
	}
	cfg := LightStudyConfig(3)
	cfg.Workers = 4
	plain, err := NewStudy(cfg).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	observed, err := NewStudy(cfg).RunAllObserved()
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := observed.Report.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("observed report text differs from plain RunAll")
	}
}
