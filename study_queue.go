package fesplit

// This file holds the load-aware back-end queueing scenarios: the study
// cells that exercise the replicated multi-server queue model
// (internal/backend.Cluster) and the FE-side connection pool under
// load. All four scenarios drive open-loop arrival campaigns
// (emulator.RunOpenLoop) so offered load is a pure function of the
// configuration — completions never throttle arrivals, which is what
// lets a surge actually overload the cluster. See docs/QUEUEING.md.
//
//   - Overload: a traffic spike (4× arrival rate for a window) against
//     a capped queue — rejections, retries, and a Tdynamic tail that
//     tracks queue depth.
//   - Hotspot: an expensive hot keyword replaces the corpus during the
//     window at an unchanged arrival rate — utilization, not rate,
//     overloads the cluster.
//   - Failover: mid-run, every FE fails over to the deployment's
//     farthest data center — Tdynamic steps up by the extra backbone
//     RTT while the queue stays calm.
//   - Capacity: the same steady workload against a shrinking replica
//     count — the p99 Tdynamic curve crosses the SLO as the cluster
//     saturates, the capacity-planning sweep.

import (
	"fmt"
	"strings"
	"time"

	"fesplit/internal/analysis"
	"fesplit/internal/backend"
	"fesplit/internal/cdn"
	"fesplit/internal/emulator"
	"fesplit/internal/frontend"
	"fesplit/internal/stats"
	"fesplit/internal/workload"
)

// QueueBucket is one time bucket of an open-loop queueing scenario:
// arrival counts by outcome, the Tdynamic distribution of fully served
// queries, and the cluster state sampled at the bucket's end.
type QueueBucket struct {
	// StartS is the bucket's start, in sim seconds.
	StartS float64
	// Offered counts arrivals in the bucket; OK of them were served
	// with the full dynamic portion, Degraded got only the static
	// prefix (FE exhausted its 503 retries), Rejected were refused
	// outright with a 503 (FE pool admission).
	Offered, OK, Degraded, Rejected int
	// P50Ms / P99Ms summarize Tdynamic of the bucket's OK queries.
	P50Ms, P99Ms float64
	// QueueDepth and Utilization are the BE cluster's queue length and
	// busy-replica fraction sampled at the bucket's end instant.
	QueueDepth  int
	Utilization float64
}

// OverloadData is the traffic-spike scenario outcome.
type OverloadData struct {
	Service  string
	Replicas int
	QueueCap int
	// SurgeStartS / SurgeEndS bound the spike window (sim seconds).
	SurgeStartS, SurgeEndS float64
	Buckets                []QueueBucket
	// BERejected counts cluster-level 503s (before FE retries);
	// FERetries the retries the FEs issued against them; Degraded the
	// queries that still ended static-only after retries ran out.
	BERejected, FERetries, Degraded int
	MaxQueueDepth                   int
}

// HotspotData is the hot-keyword scenario outcome.
type HotspotData struct {
	Service  string
	Replicas int
	// HotTerms is the term count of the hot query — its service-time
	// multiplier relative to the corpus.
	HotTerms               int
	SurgeStartS, SurgeEndS float64
	Buckets                []QueueBucket
	MaxQueueDepth          int
}

// FailoverData is the FE-fleet failover scenario outcome.
type FailoverData struct {
	Service string
	// FailAtS is when every FE switched to its farthest BE.
	FailAtS float64
	// FromBE/ToBE name the first FE's data centers (representative —
	// the single-BE-per-FE mapping before, the farthest after).
	FromBE, ToBE string
	Buckets      []QueueBucket
	// PreP50Ms / PostP50Ms are the median Tdynamic before and after
	// the failover instant; the step is the extra backbone RTT.
	PreP50Ms, PostP50Ms float64
}

// CapacityPoint is one replica count of the capacity-planning sweep.
type CapacityPoint struct {
	Replicas      int
	Offered, OK   int
	Utilization   float64
	MaxQueueDepth int
	P50Ms, P99Ms  float64
	MeetsSLO      bool
}

// CapacityData is the capacity-planning sweep outcome: the same steady
// open-loop workload run against a shrinking cluster.
type CapacityData struct {
	Service string
	// SLOMs is the p99 Tdynamic objective: twice the uncontended p99
	// (the largest replica count swept) — capacity planning relative
	// to the service's own uncontended baseline.
	SLOMs float64
	// OfferedQPS is the fleet-wide steady arrival rate.
	OfferedQPS float64
	// Points are ordered by decreasing replica count.
	Points []CapacityPoint
	// MinReplicas is the smallest swept replica count whose p99 still
	// meets the SLO (0 if none does).
	MinReplicas int
}

// queueScenarioBase is the shared deployment of the overload, hotspot
// and capacity scenarios: the Bing-like service pinned to its Virginia
// data center (so every FE shares one cluster and the offered load
// concentrates), with the BE queue model enabled.
func (s *Study) queueScenarioBase(q backend.QueueOptions, pool frontend.PoolConfig) DeploymentConfig {
	cfg := cdn.SingleBE(BingLike(s.cfg.Seed+1), "bing-be-virginia")
	cfg.BEOptions.Queue = q
	cfg.FEPool = pool
	return cfg
}

// queueBuckets folds a dataset's records into fixed-width time buckets
// by arrival time. Records are classified by outcome against the
// content boundary: full dynamic portion (OK), static-only (Degraded),
// 503 (Rejected). Tdynamic quantiles summarize only OK records.
func queueBuckets(ds *emulator.Dataset, boundary int, width, horizon time.Duration) []QueueBucket {
	n := int((horizon + width - 1) / width)
	buckets := make([]QueueBucket, n)
	tdyn := make([][]float64, n)
	for i := range buckets {
		buckets[i].StartS = (time.Duration(i) * width).Seconds()
	}
	for i := range ds.Records {
		rec := &ds.Records[i]
		b := int(rec.IssuedAt / width)
		if b < 0 || b >= n {
			continue
		}
		buckets[b].Offered++
		switch {
		case rec.Status == 503:
			buckets[b].Rejected++
		case rec.Failed || rec.BodyLen <= boundary:
			buckets[b].Degraded++
		default:
			buckets[b].OK++
			if p, err := analysis.ExtractRecord(*rec, boundary); err == nil {
				tdyn[b] = append(tdyn[b], ms(p.Tdynamic))
			}
		}
	}
	for i := range buckets {
		buckets[i].P50Ms = stats.Median(tdyn[i])
		buckets[i].P99Ms = stats.Quantile(tdyn[i], 0.99)
	}
	return buckets
}

// probeCluster schedules one cluster-state probe per bucket boundary
// (pure reads — the probes never perturb the simulation) and returns a
// closure that copies the samples into the buckets after the run.
func probeCluster(r *emulator.Runner, cl *backend.Cluster, width time.Duration, n int) func([]QueueBucket) {
	depth := make([]int, n)
	util := make([]float64, n)
	for b := 0; b < n; b++ {
		b := b
		r.Sim.ScheduleAt(time.Duration(b+1)*width, func() {
			depth[b] = cl.Waiting()
			util[b] = float64(cl.Busy()) / float64(cl.Replicas())
		})
	}
	return func(buckets []QueueBucket) {
		for b := range buckets {
			if b < n {
				buckets[b].QueueDepth = depth[b]
				buckets[b].Utilization = util[b]
			}
		}
	}
}

// Scenario pacing: these constants size the scenarios to overload a
// Bing-like cluster (mean service ≈ 200 ms) without paper-scale cost.
// They are part of the golden-CSV contract.
const (
	queueBucketWidth  = 4 * time.Second
	queueHorizon      = 48 * time.Second
	queueSurgeStart   = 16 * time.Second
	queueSurgeEnd     = 32 * time.Second
	queueScenarioNode = 32
)

// Overload runs the traffic-spike scenario: 32 nodes at a steady
// open-loop rate against a 6-replica capped cluster, with the arrival
// rate quadrupled inside the surge window. The cluster sheds load at
// the queue cap (503s), FEs retry with backoff, and the Tdynamic tail
// inside the window tracks the queue depth gauges.
func (s *Study) Overload() (*OverloadData, error) {
	const replicas, qcap = 6, 24
	cfg := s.queueScenarioBase(
		backend.QueueOptions{Replicas: replicas, QueueCap: qcap, Policy: backend.LeastOutstanding},
		frontend.PoolConfig{MaxConns: 8, QueueCap: 16, Retries: 2, Backoff: 25 * time.Millisecond},
	)
	boundary, err := s.boundaryFor(BingLike(s.cfg.Seed + 1))
	if err != nil {
		return nil, err
	}
	runner, err := emulator.New(s.cfg.Seed+110, cfg, emulator.Options{
		Nodes: queueScenarioNode, FleetSeed: s.cfg.Seed + 111,
		Obs: s.obsv, Runtime: s.rt,
	})
	if err != nil {
		return nil, err
	}
	be := runner.Dep.BEs[0]
	n := int(queueHorizon / queueBucketWidth)
	fill := probeCluster(runner, be.Cluster(), queueBucketWidth, n)
	ds := runner.RunOpenLoop(emulator.OpenLoopOptions{
		QueriesPerNode: 20,
		QuerySeed:      s.cfg.Seed + 112,
		Horizon:        queueHorizon,
		BaseInterval:   2 * time.Second,
		SurgeStart:     queueSurgeStart,
		SurgeEnd:       queueSurgeEnd,
		SurgeFactor:    4,
	})
	analysis.ObserveCritPath(s.obsv.Registry(), "overload/"+cfg.Name, ds, boundary)
	d := &OverloadData{
		Service:       cfg.Name,
		Replicas:      replicas,
		QueueCap:      qcap,
		SurgeStartS:   queueSurgeStart.Seconds(),
		SurgeEndS:     queueSurgeEnd.Seconds(),
		Buckets:       queueBuckets(ds, boundary, queueBucketWidth, queueHorizon),
		BERejected:    be.Rejected(),
		MaxQueueDepth: be.MaxQueueLen(),
	}
	fill(d.Buckets)
	for _, fe := range runner.Dep.FEs {
		d.FERetries += fe.BERetries()
		d.Degraded += fe.BERejectedFetches()
	}
	return d, nil
}

// Hotspot runs the hot-keyword scenario: the arrival rate never
// changes, but inside the surge window every node issues one expensive
// 16-term query instead of its corpus — per-query work, not query
// rate, saturates the 5-replica cluster. No queue cap: the effect is
// pure queueing delay, visible in the window's p99 and queue depth.
func (s *Study) Hotspot() (*HotspotData, error) {
	const replicas = 5
	hotKeywords := "rare archival corpus deep join of many heavy index shards scanned without cache locality"
	hot := workload.Query{
		Keywords: hotKeywords,
		Terms:    len(strings.Fields(hotKeywords)),
		Class:    workload.ClassComplex,
		Rank:     workload.NumRanks - 1,
		ID:       987654,
	}
	cfg := s.queueScenarioBase(
		backend.QueueOptions{Replicas: replicas, Policy: backend.LeastOutstanding},
		frontend.PoolConfig{},
	)
	boundary, err := s.boundaryFor(BingLike(s.cfg.Seed + 1))
	if err != nil {
		return nil, err
	}
	runner, err := emulator.New(s.cfg.Seed+120, cfg, emulator.Options{
		Nodes: queueScenarioNode, FleetSeed: s.cfg.Seed + 121,
		Obs: s.obsv, Runtime: s.rt,
	})
	if err != nil {
		return nil, err
	}
	be := runner.Dep.BEs[0]
	n := int(queueHorizon / queueBucketWidth)
	fill := probeCluster(runner, be.Cluster(), queueBucketWidth, n)
	ds := runner.RunOpenLoop(emulator.OpenLoopOptions{
		QueriesPerNode: 20,
		QuerySeed:      s.cfg.Seed + 122,
		Horizon:        queueHorizon,
		BaseInterval:   2 * time.Second,
		SurgeStart:     queueSurgeStart,
		SurgeEnd:       queueSurgeEnd,
		HotQuery:       hot,
	})
	analysis.ObserveCritPath(s.obsv.Registry(), "hotspot/"+cfg.Name, ds, boundary)
	d := &HotspotData{
		Service:       cfg.Name,
		Replicas:      replicas,
		HotTerms:      hot.Terms,
		SurgeStartS:   queueSurgeStart.Seconds(),
		SurgeEndS:     queueSurgeEnd.Seconds(),
		Buckets:       queueBuckets(ds, boundary, queueBucketWidth, queueHorizon),
		MaxQueueDepth: be.MaxQueueLen(),
	}
	fill(d.Buckets)
	return d, nil
}

// Failover runs the FE-fleet failover scenario against the full
// multi-BE Bing-like deployment (every BE an 8-replica cluster, far
// from saturation): mid-run, every FE switches to the data center
// farthest from its site. Tdynamic steps up by the extra backbone RTT
// while queue depth stays flat — distance, not load, explains the
// shift, and the be-rtt critical-path phase carries the blame.
func (s *Study) Failover() (*FailoverData, error) {
	failAt := queueHorizon / 2
	cfg := BingLike(s.cfg.Seed + 1)
	cfg.BEOptions.Queue = backend.QueueOptions{Replicas: 8, Policy: backend.LeastOutstanding}
	boundary, err := s.boundaryFor(cfg)
	if err != nil {
		return nil, err
	}
	runner, err := emulator.New(s.cfg.Seed+130, cfg, emulator.Options{
		Nodes: queueScenarioNode, FleetSeed: s.cfg.Seed + 131,
		Obs: s.obsv, Runtime: s.rt,
	})
	if err != nil {
		return nil, err
	}
	// Pre-wire every FE to its failover target, then schedule the
	// fleet-wide switch.
	d := &FailoverData{Service: cfg.Name, FailAtS: failAt.Seconds()}
	for i, fe := range runner.Dep.FEs {
		fe := fe
		far := runner.Dep.FarthestBE(fe.Site().Point)
		runner.Dep.WireFEBE(fe, far)
		if i == 0 {
			d.FromBE = string(fe.BEHost())
			d.ToBE = string(far.Host())
		}
		runner.Sim.ScheduleAt(failAt, func() { fe.SetBEHost(far.Host()) })
	}
	ds := runner.RunOpenLoop(emulator.OpenLoopOptions{
		QueriesPerNode: 20,
		QuerySeed:      s.cfg.Seed + 132,
		Horizon:        queueHorizon,
		BaseInterval:   2 * time.Second,
	})
	analysis.ObserveCritPath(s.obsv.Registry(), "failover/"+cfg.Name, ds, boundary)
	d.Buckets = queueBuckets(ds, boundary, queueBucketWidth, queueHorizon)
	var pre, post []float64
	for i := range ds.Records {
		rec := &ds.Records[i]
		if rec.Failed || rec.Status == 503 || rec.BodyLen <= boundary {
			continue
		}
		p, err := analysis.ExtractRecord(*rec, boundary)
		if err != nil {
			continue
		}
		if rec.IssuedAt < failAt {
			pre = append(pre, ms(p.Tdynamic))
		} else {
			post = append(post, ms(p.Tdynamic))
		}
	}
	d.PreP50Ms = stats.Median(pre)
	d.PostP50Ms = stats.Median(post)
	return d, nil
}

// capacityReplicaSweep is the sweep order: decreasing, so the first
// point is the uncontended baseline the SLO derives from.
var capacityReplicaSweep = []int{8, 6, 5, 4, 3}

// Capacity runs the capacity-planning sweep: the identical steady
// open-loop workload (same seeds, same fleet, same arrival schedule)
// against a cluster of 8, 6, 5, 4 and 3 replicas. Utilization climbs
// as replicas are removed until the cluster saturates and the p99
// Tdynamic crosses the SLO — twice the uncontended (8-replica) p99.
func (s *Study) Capacity() (*CapacityData, error) {
	const (
		nodes    = 24
		interval = 1500 * time.Millisecond
		horizon  = 40 * time.Second
	)
	boundary, err := s.boundaryFor(BingLike(s.cfg.Seed + 1))
	if err != nil {
		return nil, err
	}
	d := &CapacityData{
		Service:    "bing-like",
		OfferedQPS: float64(nodes) / interval.Seconds(),
	}
	for _, replicas := range capacityReplicaSweep {
		cfg := s.queueScenarioBase(
			backend.QueueOptions{Replicas: replicas, Policy: backend.LeastOutstanding},
			frontend.PoolConfig{},
		)
		runner, err := emulator.New(s.cfg.Seed+140, cfg, emulator.Options{
			Nodes: nodes, FleetSeed: s.cfg.Seed + 141,
			Obs: s.obsv, Runtime: s.rt,
		})
		if err != nil {
			return nil, err
		}
		be := runner.Dep.BEs[0]
		ds := runner.RunOpenLoop(emulator.OpenLoopOptions{
			QueriesPerNode: 20,
			QuerySeed:      s.cfg.Seed + 142,
			Horizon:        horizon,
			BaseInterval:   interval,
		})
		analysis.ObserveCritPath(s.obsv.Registry(),
			fmt.Sprintf("capacity/r%d", replicas), ds, boundary)
		pt := CapacityPoint{
			Replicas:      replicas,
			Utilization:   be.Cluster().Utilization(runner.Sim.Now()),
			MaxQueueDepth: be.MaxQueueLen(),
		}
		var tdyn []float64
		for i := range ds.Records {
			rec := &ds.Records[i]
			pt.Offered++
			if rec.Failed || rec.Status == 503 || rec.BodyLen <= boundary {
				continue
			}
			p, err := analysis.ExtractRecord(*rec, boundary)
			if err != nil {
				continue
			}
			pt.OK++
			tdyn = append(tdyn, ms(p.Tdynamic))
		}
		pt.P50Ms = stats.Median(tdyn)
		pt.P99Ms = stats.Quantile(tdyn, 0.99)
		d.Points = append(d.Points, pt)
	}
	// The SLO derives from the first (largest-replica) point: twice
	// the uncontended p99 — the knee the sweep is designed to cross.
	d.SLOMs = 2 * d.Points[0].P99Ms
	for i := range d.Points {
		p := &d.Points[i]
		p.MeetsSLO = p.P99Ms <= d.SLOMs
		if p.MeetsSLO && (d.MinReplicas == 0 || p.Replicas < d.MinReplicas) {
			d.MinReplicas = p.Replicas
		}
	}
	return d, nil
}
