package fesplit

import (
	"fmt"
	"testing"
)

// fmtData renders a scenario result for byte-level comparison.
func fmtData(v interface{}) string { return fmt.Sprintf("%+v", v) }

// TestOverloadScenario pins the traffic-spike scenario's shape: the
// surge must actually overload the capped cluster (rejections and
// queueing appear inside the window), the cap must bound the queue,
// and the quiet buckets before the surge must stay uncontended.
func TestOverloadScenario(t *testing.T) {
	s := NewStudy(LightStudyConfig(42))
	d, err := s.Overload()
	if err != nil {
		t.Fatal(err)
	}
	if d.Replicas <= 0 || d.QueueCap <= 0 {
		t.Fatalf("scenario misconfigured: %+v", d)
	}
	if d.MaxQueueDepth > d.QueueCap {
		t.Errorf("queue depth %d exceeded cap %d", d.MaxQueueDepth, d.QueueCap)
	}
	if d.BERejected == 0 {
		t.Error("surge produced no BE rejections — overload is vacuous")
	}
	if d.FERetries == 0 {
		t.Error("BE 503s produced no FE retries")
	}
	var surge, quiet *QueueBucket
	for i := range d.Buckets {
		b := &d.Buckets[i]
		switch {
		case b.StartS >= d.SurgeStartS+4 && b.StartS < d.SurgeEndS && surge == nil:
			surge = b
		case b.StartS >= 4 && b.StartS < d.SurgeStartS-4 && quiet == nil:
			quiet = b
		}
	}
	if surge == nil || quiet == nil {
		t.Fatalf("bucket layout broken: %+v", d.Buckets)
	}
	if surge.Offered <= 2*quiet.Offered {
		t.Errorf("surge bucket offered %d, quiet %d — no spike", surge.Offered, quiet.Offered)
	}
	if surge.Rejected+surge.Degraded == 0 {
		t.Errorf("surge bucket shed no load: %+v", *surge)
	}
	if surge.P99Ms <= quiet.P99Ms {
		t.Errorf("surge p99 %.1f ms not above quiet p99 %.1f ms", surge.P99Ms, quiet.P99Ms)
	}
	// Accounting: every offered query has exactly one outcome.
	for _, b := range d.Buckets {
		if b.OK+b.Degraded+b.Rejected != b.Offered {
			t.Errorf("bucket %.0f: ok %d + degraded %d + rejected %d != offered %d",
				b.StartS, b.OK, b.Degraded, b.Rejected, b.Offered)
		}
	}
}

// TestHotspotScenario pins the hot-keyword scenario: with the arrival
// rate unchanged, the expensive query alone must drive up utilization,
// queue depth and the p99 inside the window.
func TestHotspotScenario(t *testing.T) {
	s := NewStudy(LightStudyConfig(42))
	d, err := s.Hotspot()
	if err != nil {
		t.Fatal(err)
	}
	var surge, quiet *QueueBucket
	for i := range d.Buckets {
		b := &d.Buckets[i]
		switch {
		case b.StartS >= d.SurgeStartS+4 && b.StartS < d.SurgeEndS && surge == nil:
			surge = b
		case b.StartS >= 4 && b.StartS < d.SurgeStartS-4 && quiet == nil:
			quiet = b
		}
	}
	if surge == nil || quiet == nil {
		t.Fatalf("bucket layout broken: %+v", d.Buckets)
	}
	// The rate never surges: offered counts match across windows.
	if surge.Offered != quiet.Offered {
		t.Errorf("hotspot changed arrival rate: surge %d vs quiet %d offered",
			surge.Offered, quiet.Offered)
	}
	if surge.P99Ms <= quiet.P99Ms {
		t.Errorf("hot window p99 %.1f ms not above quiet p99 %.1f ms",
			surge.P99Ms, quiet.P99Ms)
	}
	if d.MaxQueueDepth == 0 {
		t.Error("hot query never queued — scenario is vacuous")
	}
}

// TestFailoverScenario pins the failover step: after every FE switches
// to its farthest BE, the median Tdynamic must rise by at least the
// extra backbone propagation (tens of ms for a cross-country switch).
func TestFailoverScenario(t *testing.T) {
	s := NewStudy(LightStudyConfig(42))
	d, err := s.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if d.FromBE == d.ToBE {
		t.Fatalf("failover is a no-op: %s → %s", d.FromBE, d.ToBE)
	}
	if d.PostP50Ms <= d.PreP50Ms+10 {
		t.Errorf("failover step too small: pre %.1f ms → post %.1f ms",
			d.PreP50Ms, d.PostP50Ms)
	}
}

// TestCapacitySweep pins the capacity-planning knee: p99 Tdynamic must
// grow monotonically as replicas are removed and cross the SLO before
// the smallest cluster, with utilization explaining the blame.
func TestCapacitySweep(t *testing.T) {
	s := NewStudy(LightStudyConfig(42))
	d, err := s.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) < 3 {
		t.Fatalf("sweep too small: %+v", d.Points)
	}
	first, last := d.Points[0], d.Points[len(d.Points)-1]
	if !first.MeetsSLO {
		t.Errorf("largest cluster (%d replicas) misses its own derived SLO", first.Replicas)
	}
	if last.MeetsSLO {
		t.Errorf("smallest cluster (%d replicas, p99 %.1f ms) still meets SLO %.1f ms — sweep never crosses",
			last.Replicas, last.P99Ms, d.SLOMs)
	}
	if d.MinReplicas == 0 {
		t.Error("no swept replica count meets the SLO")
	}
	for i := 1; i < len(d.Points); i++ {
		prev, cur := d.Points[i-1], d.Points[i]
		if cur.Replicas >= prev.Replicas {
			t.Fatalf("sweep not in decreasing replica order: %+v", d.Points)
		}
		// Tail quantiles wobble a few percent between uncontended
		// points; only a real drop breaks the knee shape.
		if cur.P99Ms < prev.P99Ms*0.9 {
			t.Errorf("p99 fell from %.1f to %.1f ms when replicas dropped %d → %d",
				prev.P99Ms, cur.P99Ms, prev.Replicas, cur.Replicas)
		}
		if cur.Utilization < prev.Utilization {
			t.Errorf("utilization fell from %.2f to %.2f when replicas dropped %d → %d",
				prev.Utilization, cur.Utilization, prev.Replicas, cur.Replicas)
		}
		// The workload is identical across the sweep.
		if cur.Offered != prev.Offered {
			t.Errorf("offered load changed across sweep: %d vs %d", prev.Offered, cur.Offered)
		}
	}
}

// TestQueueScenariosDeterministic pins byte-level reproducibility of
// the scenario cells: two studies with equal seeds produce identical
// data, and the scenarios are independent of each other (running one
// does not perturb another).
func TestQueueScenariosDeterministic(t *testing.T) {
	run := func() (*OverloadData, *CapacityData) {
		s := NewStudy(LightStudyConfig(42))
		o, err := s.Overload()
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Capacity()
		if err != nil {
			t.Fatal(err)
		}
		return o, c
	}
	o1, c1 := run()
	o2, c2 := run()
	if fmtData(*o1) != fmtData(*o2) {
		t.Errorf("overload not deterministic:\n%s\nvs\n%s", fmtData(*o1), fmtData(*o2))
	}
	if fmtData(*c1) != fmtData(*c2) {
		t.Errorf("capacity not deterministic:\n%s\nvs\n%s", fmtData(*c1), fmtData(*c2))
	}
}
