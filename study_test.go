package fesplit

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestStudyHeadlineFindings runs the light-scale study end to end and
// asserts the paper's cross-service findings hold in shape:
//
//  1. Bing-like FEs are closer to clients (Figure 6),
//  2. yet Bing-like Tstatic and Tdynamic are higher and more variable
//     (Figure 7),
//  3. overall delay is worse and more variable for Bing-like (Figure 8),
//  4. the fetch-time factoring separates the services by an order of
//     magnitude in processing time with similar slopes (Figure 9),
//  5. no result caching is detected on the deployed services, while the
//     positive control is caught (Section 3).
func TestStudyHeadlineFindings(t *testing.T) {
	study := NewStudy(LightStudyConfig(7))

	// (1) Figure 6.
	fig6, err := study.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	byName6 := map[string]*Fig6Data{}
	for _, f := range fig6 {
		byName6[f.Service] = f
	}
	bing6, google6 := byName6["bing-like"], byName6["google-like"]
	if bing6 == nil || google6 == nil {
		t.Fatalf("missing services in fig6: %v", byName6)
	}
	if bing6.FracUnder20ms <= google6.FracUnder20ms {
		t.Fatalf("fig6: Bing-like (%.2f under 20ms) must beat Google-like (%.2f)",
			bing6.FracUnder20ms, google6.FracUnder20ms)
	}

	// (2) Figure 7.
	fig7, err := study.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	byName7 := map[string]*Fig7Data{}
	for _, f := range fig7 {
		byName7[f.Service] = f
	}
	bing7, google7 := byName7["bing-like"], byName7["google-like"]
	if bing7.MedStaticMS <= google7.MedStaticMS {
		t.Fatalf("fig7: Bing-like Tstatic (%.1f) must exceed Google-like (%.1f)",
			bing7.MedStaticMS, google7.MedStaticMS)
	}
	if bing7.MedDynamicMS <= google7.MedDynamicMS {
		t.Fatalf("fig7: Bing-like Tdynamic (%.1f) must exceed Google-like (%.1f)",
			bing7.MedDynamicMS, google7.MedDynamicMS)
	}
	if bing7.IQRDynMS <= google7.IQRDynMS {
		t.Fatalf("fig7: Bing-like Tdynamic IQR (%.1f) must exceed Google-like (%.1f)",
			bing7.IQRDynMS, google7.IQRDynMS)
	}

	// (3) Figure 8.
	fig8, err := study.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	byName8 := map[string]*Fig8Data{}
	for _, f := range fig8 {
		byName8[f.Service] = f
	}
	bing8, google8 := byName8["bing-like"], byName8["google-like"]
	if bing8.MedOverallMS <= google8.MedOverallMS {
		t.Fatalf("fig8: Bing-like overall (%.1f ms) must exceed Google-like (%.1f ms)",
			bing8.MedOverallMS, google8.MedOverallMS)
	}
	if bing8.SpreadMS <= google8.SpreadMS {
		t.Fatalf("fig8: Bing-like spread (%.1f) must exceed Google-like (%.1f)",
			bing8.SpreadMS, google8.SpreadMS)
	}

	// (4) Figure 9.
	fig9, err := study.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	byName9 := map[string]*Fig9Data{}
	for _, f := range fig9 {
		byName9[f.Service] = f
	}
	bing9, google9 := byName9["bing-like"], byName9["google-like"]
	if bing9.Result.ProcTimeMS < 4*google9.Result.ProcTimeMS {
		t.Fatalf("fig9: Bing-like intercept (%.1f) must dwarf Google-like (%.1f)",
			bing9.Result.ProcTimeMS, google9.Result.ProcTimeMS)
	}
	if bing9.Result.SlopeMSPerMile <= 0 || google9.Result.SlopeMSPerMile <= 0 {
		t.Fatalf("fig9: slopes must be positive: %.4f / %.4f",
			bing9.Result.SlopeMSPerMile, google9.Result.SlopeMSPerMile)
	}
	ratio := bing9.Result.SlopeMSPerMile / google9.Result.SlopeMSPerMile
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("fig9: slopes should be similar across services, ratio %.2f", ratio)
	}

	// (5) Caching.
	caching, err := study.Caching()
	if err != nil {
		t.Fatal(err)
	}
	if caching.Deployed.CachingDetected {
		t.Fatalf("caching: false positive on deployed service: %+v", caching.Deployed)
	}
	if !caching.Control.CachingDetected {
		t.Fatalf("caching: positive control missed: %+v", caching.Control)
	}

	t.Logf("fig6 under-20ms: bing %.2f google %.2f", bing6.FracUnder20ms, google6.FracUnder20ms)
	t.Logf("fig7 Tdyn: bing %.1f±%.1f google %.1f±%.1f ms",
		bing7.MedDynamicMS, bing7.IQRDynMS, google7.MedDynamicMS, google7.IQRDynMS)
	t.Logf("fig9: bing %.4f·x+%.1f, google %.4f·x+%.1f",
		bing9.Result.SlopeMSPerMile, bing9.Result.ProcTimeMS,
		google9.Result.SlopeMSPerMile, google9.Result.ProcTimeMS)
}

func TestStudyFig3ClassEffect(t *testing.T) {
	study := NewStudy(LightStudyConfig(3))
	f3, err := study.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Classes) != 4 {
		t.Fatalf("classes = %d", len(f3.Classes))
	}
	for _, c := range f3.Classes {
		if len(f3.Tstatic[c]) == 0 || len(f3.Tdynamic[c]) == 0 {
			t.Fatalf("empty series for class %v", c)
		}
	}
	// Tdynamic should differ across classes far more than Tstatic:
	// compare the spread of class medians.
	medOf := func(m map[QueryClass][]float64) (lo, hi float64) {
		lo, hi = 1e18, -1e18
		for _, c := range f3.Classes {
			var sum float64
			for _, v := range m[c] {
				sum += v
			}
			med := sum / float64(len(m[c]))
			if med < lo {
				lo = med
			}
			if med > hi {
				hi = med
			}
		}
		return lo, hi
	}
	stLo, stHi := medOf(f3.Tstatic)
	dyLo, dyHi := medOf(f3.Tdynamic)
	if (dyHi - dyLo) <= (stHi - stLo) {
		t.Fatalf("class effect: Tdynamic spread (%.1f) must exceed Tstatic spread (%.1f)",
			dyHi-dyLo, stHi-stLo)
	}
}

func TestStudyFig4TimelinesMerge(t *testing.T) {
	study := NewStudy(LightStudyConfig(4))
	rows, err := study.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RTTMS <= rows[i-1].RTTMS {
			t.Fatal("rows not RTT-ordered")
		}
	}
	// Each timeline must contain a handshake and payload packets.
	for _, row := range rows {
		var payloads int
		for _, ev := range row.Events {
			if ev.Payload > 0 && !ev.Send {
				payloads++
			}
		}
		if payloads < 5 {
			t.Fatalf("row RTT=%.1f has only %d inbound payload packets", row.RTTMS, payloads)
		}
	}
	// The static→dynamic cluster gap must merge as RTT grows. At high
	// RTT the only remaining receive gaps are slow-start window rounds
	// (≈ 1 RTT each), so measure the largest gap in units of RTT: many
	// RTTs at the low end, ~1 RTT once the clusters coalesce.
	maxGapRTTs := func(row Fig4Row) float64 {
		var prev float64 = -1
		var gap float64
		for _, ev := range row.Events {
			if ev.Send || ev.Payload == 0 {
				continue
			}
			if prev >= 0 && ev.AtMS-prev > gap {
				gap = ev.AtMS - prev
			}
			prev = ev.AtMS
		}
		return gap / row.RTTMS
	}
	first, last := maxGapRTTs(rows[0]), maxGapRTTs(rows[len(rows)-1])
	if first < 3 {
		t.Fatalf("no distinct clusters at low RTT: max gap %.1f RTTs", first)
	}
	if last > 1.5 {
		t.Fatalf("clusters did not merge at high RTT: max gap %.1f RTTs", last)
	}
}

func TestStudyFig5ThresholdOrdering(t *testing.T) {
	study := NewStudy(LightStudyConfig(5))
	fig5, err := study.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Fig5Data{}
	for _, f := range fig5 {
		byName[f.Service] = f
	}
	bing, google := byName["bing-like"], byName["google-like"]
	if bing == nil || google == nil {
		t.Fatal("missing service")
	}
	for _, f := range fig5 {
		if !f.BoundsOK {
			t.Fatalf("%s: inference bounds failed: %.1f ≤ %.1f ≤ %.1f",
				f.Service, f.BoundLoMS, f.TruthMS, f.BoundHiMS)
		}
	}
	// The Tdelta threshold is higher for the slower back-end
	// (paper: Google 50–100 ms, Bing 100–200 ms).
	if bing.HasThresh && google.HasThresh && bing.ThresholdMS <= google.ThresholdMS {
		t.Fatalf("thresholds: bing %.0f ms should exceed google %.0f ms",
			bing.ThresholdMS, google.ThresholdMS)
	}
	t.Logf("thresholds: bing %.0f ms (found=%v), google %.0f ms (found=%v)",
		bing.ThresholdMS, bing.HasThresh, google.ThresholdMS, google.HasThresh)
}

func TestWriteReportRendersEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	study := NewStudy(LightStudyConfig(6))
	var buf bytes.Buffer
	if err := study.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Section 3",
		"bing-like", "google-like", "threshold", "Tfetch",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out[:min(len(out), 2000)])
		}
	}
}

func TestPlacementSweepPublicAPI(t *testing.T) {
	pts, err := PlacementSweep(SweepConfig{
		Fractions: []float64{0.1, 0.9}, Repeats: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	var buf bytes.Buffer
	WritePlacementSweep(&buf, pts)
	if !strings.Contains(buf.String(), "fraction") {
		t.Fatal("sweep table missing header")
	}
}

func TestDirectBaselinePublicAPI(t *testing.T) {
	res, err := RunDirectBaseline(SingleBE(GoogleLike(1), "google-be-lenoir"),
		10, 3, 2, time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for i := 1; i < len(res); i++ {
		if res[i].RTT < res[i-1].RTT {
			t.Fatal("results not RTT-sorted")
		}
	}
}

func TestPredictTimelinePublicAPI(t *testing.T) {
	p, err := PredictTimeline(ModelInputs{
		RTT: 20 * time.Millisecond, FEDelay: 10 * time.Millisecond,
		Fetch: 100 * time.Millisecond, StaticBytes: 8000, DynamicBytes: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Tdynamic() <= 0 {
		t.Fatal("no prediction")
	}
}

func TestMovingMedianPublicAPI(t *testing.T) {
	out := MovingMedian([]float64{1, 100, 1}, 3)
	if len(out) != 3 {
		t.Fatal("length mismatch")
	}
}

func TestWriteCSVsExportsFigures(t *testing.T) {
	study := NewStudy(LightStudyConfig(8))
	rep := &Report{Config: study.Config()}
	var err error
	if rep.Fig4, err = study.Fig4(); err != nil {
		t.Fatal(err)
	}
	if rep.Fig6, err = study.Fig6(); err != nil {
		t.Fatal(err)
	}
	if rep.Fig9, err = study.Fig9(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := rep.WriteCSVs(dir); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig4.csv", "fig6.csv", "fig9.csv"} {
		st, err := os.Stat(filepath.Join(dir, want))
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s empty", want)
		}
	}
	// Figures not computed must not produce files.
	if _, err := os.Stat(filepath.Join(dir, "fig3.csv")); !os.IsNotExist(err) {
		t.Fatal("fig3.csv written without data")
	}
	// CSV must parse back.
	f, err := os.Open(filepath.Join(dir, "fig9.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 || len(rows[0]) != 6 {
		t.Fatalf("fig9.csv shape: %d rows × %d cols", len(rows), len(rows[0]))
	}
}

func TestTermEffectStudy(t *testing.T) {
	study := NewStudy(LightStudyConfig(9))
	res, err := study.TermEffect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("services = %d", len(res))
	}
	for _, d := range res {
		if len(d.Points) < 3 {
			t.Fatalf("%s: term buckets = %d", d.Service, len(d.Points))
		}
		if d.SlopeMSPerTerm <= 0 {
			t.Fatalf("%s: slope = %.2f, want positive", d.Service, d.SlopeMSPerTerm)
		}
	}
	// Bing charges more per term than Google (12 vs 2 ms configured).
	var bing, google *TermEffectData
	for _, d := range res {
		switch d.Service {
		case "bing-like":
			bing = d
		case "google-like":
			google = d
		}
	}
	if bing.SlopeMSPerTerm <= google.SlopeMSPerTerm {
		t.Fatalf("term slopes: bing %.2f should exceed google %.2f",
			bing.SlopeMSPerTerm, google.SlopeMSPerTerm)
	}
}

func TestInteractiveStudy(t *testing.T) {
	study := NewStudy(LightStudyConfig(10))
	res, err := study.Interactive("cloud computing")
	if err != nil {
		t.Fatal(err)
	}
	if !res.ModelHolds {
		t.Fatal("per-keystroke sessions did not fit the basic model")
	}
	if res.Connections != res.Keystrokes {
		t.Fatalf("connections %d != keystrokes %d (paper: fresh TCP per letter)",
			res.Connections, res.Keystrokes)
	}
	if len(res.PerKeystrokeTdynMS) != res.Keystrokes {
		t.Fatalf("Tdynamic series incomplete: %d/%d",
			len(res.PerKeystrokeTdynMS), res.Keystrokes)
	}
}

func TestWirelessStudy(t *testing.T) {
	study := NewStudy(LightStudyConfig(11))
	res, err := study.Wireless()
	if err != nil {
		t.Fatal(err)
	}
	if res.WirelessOverallMS <= res.CampusOverallMS {
		t.Fatalf("wireless (%.1f) not slower than campus (%.1f)",
			res.WirelessOverallMS, res.CampusOverallMS)
	}
	if res.WirelessRetrans <= res.CampusRetrans {
		t.Fatalf("wireless retrans (%d) not above campus (%d)",
			res.WirelessRetrans, res.CampusRetrans)
	}
}

func TestModelValidationStudy(t *testing.T) {
	study := NewStudy(LightStudyConfig(12))
	res, err := study.ModelValidation()
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes < 40 {
		t.Fatalf("nodes = %d", res.Nodes)
	}
	// The analytic model should track the simulation closely.
	if res.MedAbsErrTdynMS > 15 {
		t.Fatalf("median |Tdynamic error| = %.1f ms, want ≤15", res.MedAbsErrTdynMS)
	}
	if res.MedAbsErrDeltaMS > 15 {
		t.Fatalf("median |Tdelta error| = %.1f ms, want ≤15", res.MedAbsErrDeltaMS)
	}
	if res.Within10ms < 0.5 {
		t.Fatalf("only %.0f%% of nodes within 10 ms", 100*res.Within10ms)
	}
	t.Logf("model vs sim: |Tdyn err| %.1f ms, |Tdelta err| %.1f ms, %.0f%% within 10 ms",
		res.MedAbsErrTdynMS, res.MedAbsErrDeltaMS, 100*res.Within10ms)
}
