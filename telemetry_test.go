package fesplit

import (
	"bytes"
	goruntime "runtime"
	"strings"
	"testing"
)

// TestTelemetryDeterminismNeutral is the telemetry PR's headline
// property: attaching a runtime engine — heartbeats, heap sampling,
// task progress, fast-path publication — changes no exported byte, at
// any worker count. Telemetry observes the simulation; it never feeds
// back.
func TestTelemetryDeterminismNeutral(t *testing.T) {
	const seed = 3
	run := func(workers int, attach bool) (map[string][]byte, *RuntimeEngine) {
		cfg := LightStudyConfig(seed)
		cfg.Workers = workers
		s := NewStudy(cfg)
		var eng *RuntimeEngine
		if attach {
			eng = NewRuntimeEngine()
			s.SetRuntime(eng)
		}
		out, err := s.RunAllObserved()
		if err != nil {
			t.Fatalf("workers %d attach %v: %v", workers, attach, err)
		}
		return exportAll(t, out), eng
	}

	plain, _ := run(4, false)
	observed1, eng1 := run(1, true)
	observed4, eng4 := run(4, true)

	for name, want := range plain {
		for label, got := range map[string][]byte{
			"telemetry w1": observed1[name],
			"telemetry w4": observed4[name],
		} {
			if !bytes.Equal(want, got) {
				t.Errorf("%s differs from plain run under %s (%d vs %d bytes)",
					name, label, len(want), len(got))
			}
		}
	}
	if len(plain["metrics.jsonl"]) == 0 || len(plain["fig7.csv"]) == 0 {
		t.Fatal("equivalence vacuous — empty artifacts")
	}

	// The engines must actually have seen the run, or the comparison
	// above proves nothing about telemetry.
	for label, eng := range map[string]*RuntimeEngine{"w1": eng1, "w4": eng4} {
		snap := eng.Snapshot()
		if snap.Events == 0 {
			t.Errorf("%s: engine saw no simulator events", label)
		}
		if snap.Tasks.Total == 0 || snap.Tasks.Done != snap.Tasks.Total {
			t.Errorf("%s: task progress %d/%d, want all done and nonzero",
				label, snap.Tasks.Done, snap.Tasks.Total)
		}
		if snap.HeapWatermarkBytes == 0 {
			t.Errorf("%s: no heap watermark recorded", label)
		}
		if snap.SimSeconds <= 0 {
			t.Errorf("%s: no simulated time published", label)
		}
	}
}

// TestStreamingMatchesAccumulatingFigures: the streaming record path
// must produce figure CSVs and the text report byte-identical to the
// record-accumulating path (the sketch Sum fields in the metrics dumps
// may differ in final-bit rounding between the two feed orders, so full
// artifact equality is only promised within a mode — checked below for
// workers 1 vs 4).
func TestStreamingMatchesAccumulatingFigures(t *testing.T) {
	const seed = 11
	run := func(stream bool, workers int) (map[string][]byte, *RuntimeEngine) {
		cfg := LightStudyConfig(seed)
		cfg.Workers = workers
		cfg.StreamRecords = stream
		s := NewStudy(cfg)
		eng := NewRuntimeEngine()
		s.SetRuntime(eng)
		out, err := s.RunAllObserved()
		if err != nil {
			t.Fatalf("stream %v workers %d: %v", stream, workers, err)
		}
		return exportAll(t, out), eng
	}

	acc, _ := run(false, 4)
	stream4, eng4 := run(true, 4)

	// Across modes: every figure CSV and the text report.
	figures := 0
	for name, want := range acc {
		if !strings.HasSuffix(name, ".csv") && name != "report.txt" {
			continue
		}
		if strings.HasSuffix(name, ".csv") {
			figures++
		}
		if !bytes.Equal(want, stream4[name]) {
			t.Errorf("%s differs between accumulating and streaming modes (%d vs %d bytes)",
				name, len(want), len(stream4[name]))
		}
	}
	if figures == 0 {
		t.Fatal("no figure CSVs compared — equivalence vacuous")
	}

	// Within streaming mode: full artifact byte-equality across worker
	// counts, exactly the guarantee the accumulating path already has.
	stream1, _ := run(true, 1)
	for name, want := range stream1 {
		if !bytes.Equal(want, stream4[name]) {
			t.Errorf("streaming %s differs between workers=1 and workers=4", name)
		}
	}

	if eng4.Records() == 0 {
		t.Error("streaming run reported zero records through the sink")
	}
}

// TestStreamingHeapWatermarkBound pins the memory claim: at an elevated
// fleet scale, the streaming record path must hold its heap watermark
// at least 5× below the record-accumulating path for the same
// campaign, while (per the test above) producing identical figures.
// Watermarks are measured net of a GC'd pre-run baseline so earlier
// tests' residue cannot flatter either side.
func TestStreamingHeapWatermarkBound(t *testing.T) {
	if testing.Short() {
		t.Skip("elevated-scale campaign in -short mode")
	}
	measure := func(stream bool) uint64 {
		cfg := LightStudyConfig(99)
		cfg.Nodes = 64
		cfg.QueriesPerNodeA = 40
		cfg.NodeBatches = 16
		cfg.Workers = 1
		cfg.StreamRecords = stream
		s := NewStudy(cfg)
		eng := NewRuntimeEngine()
		s.SetRuntime(eng)
		goruntime.GC()
		goruntime.GC()
		base := eng.SampleMem()
		if _, err := s.experimentA(BingLike(cfg.Seed + 1)); err != nil {
			t.Fatalf("stream %v: %v", stream, err)
		}
		wm := eng.HeapWatermark()
		if wm <= base {
			t.Fatalf("stream %v: watermark %d never rose above baseline %d", stream, wm, base)
		}
		return wm - base
	}

	streaming := measure(true)
	accumulating := measure(false)
	t.Logf("net heap watermark: accumulating %.1f MiB, streaming %.1f MiB (%.1fx)",
		float64(accumulating)/(1<<20), float64(streaming)/(1<<20),
		float64(accumulating)/float64(streaming))
	if accumulating < 5*streaming {
		t.Errorf("streaming watermark %d not 5x below accumulating %d (%.1fx)",
			streaming, accumulating, float64(accumulating)/float64(streaming))
	}
}
